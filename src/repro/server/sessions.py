"""The fleet server's session registry.

A *session* is an addressable profiling context: it binds a workload,
a collector and an operation budget, carries a fleet trace id derived
with the same :func:`~repro.bench.runner.derive_trace_id` scheme every
bench artifact uses, counts the jobs and steps run against it, and is
reaped after a configurable idle timeout so abandoned clients cannot
leak registry entries (NG2C's motivation applies: pretenuring state is
per-application, so thousands of independently-profiled sessions must
stay isolated inside one process).

Design constraints the tests pin down:

* **Deterministic identity** — session ids come from a monotonic
  sequence (``s-000001``, ...), never from wall clock or randomness;
  the sequence never reuses a number, even across close/reap.
* **Injectable time** — all idle accounting goes through a ``clock``
  callable (default :func:`time.monotonic`); the lifecycle tests drive
  a fake clock and call :meth:`SessionManager.reap` explicitly, so no
  assertion depends on real time passing.
* **Idempotent teardown** — closing an unknown or already-closed
  session returns ``False`` rather than raising; the registry is
  empty after every session is closed or reaped (no leaks).
* **Monotonic counters** — ``created``/``closed``/``reaped``/``jobs``/
  ``steps`` only ever increase, and ``created == active + closed +
  reaped`` holds at every point.

Sessions optionally carry a PR 6 :class:`~repro.telemetry.FlightRecorder`
(a *per-session sink*, scoped off the server's shared telemetry
session): lifecycle events — create, job, step, close — are recorded
into the session's own bounded ring and can be dumped over
``GET /v1/sessions/<id>/recording`` without touching any other
session's recording.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bench.runner import DEFAULT_BASE_SEED, derive_seed, derive_trace_id
from repro.telemetry import (
    FlightRecorder,
    RetentionPolicy,
    Telemetry,
    TelemetrySession,
)

#: sessions idle longer than this are reaped (seconds; per-session
#: override via ``idle_timeout_s`` at create time)
DEFAULT_IDLE_TIMEOUT_S = 600.0

#: per-session recorders must retain the rare ``server`` lifecycle
#: events un-sampled (the default policy would decimate them 1-in-8
#: on the hot channel, dropping most of a short session's history)
SESSION_RETENTION = RetentionPolicy(
    keep_categories=frozenset(RetentionPolicy().keep_categories | {"server"})
)

#: default operation count for a session's whole-run jobs / steps
DEFAULT_OPERATIONS = 2_000


@dataclass
class SessionStats:
    """Monotonic lifecycle counters for one manager lifetime."""

    created: int = 0
    closed: int = 0
    reaped: int = 0
    jobs: int = 0
    steps: int = 0

    def as_dict(self, active: int) -> Dict[str, int]:
        return {
            "active": active,
            "created": self.created,
            "closed": self.closed,
            "reaped": self.reaped,
            "jobs": self.jobs,
            "steps": self.steps,
        }


@dataclass
class Session:
    """One registered session (see module docstring for the contract)."""

    id: str
    seq: int
    workload: str
    collector: str
    operations: int
    ops_per_step: int
    idle_timeout_s: float
    created_at: float
    last_used: float
    trace_id: str
    steps: int = 0
    jobs: int = 0
    recorder: Optional[FlightRecorder] = None
    telemetry: Optional[Telemetry] = None
    _scope: Optional[TelemetrySession] = field(default=None, repr=False)

    def payload(self, now: float) -> Dict[str, object]:
        """The wire representation (protocol ``session`` object)."""
        return {
            "id": self.id,
            "seq": self.seq,
            "state": "active",
            "workload": self.workload,
            "collector": self.collector,
            "operations": self.operations,
            "ops_per_step": self.ops_per_step,
            "steps": self.steps,
            "jobs": self.jobs,
            "trace_id": self.trace_id,
            "created_s": round(self.created_at, 6),
            "idle_s": round(max(0.0, now - self.last_used), 6),
            "recorder": self.recorder.counters() if self.recorder else None,
        }

    def record(self, event: str, now: float, **args) -> None:
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "session/" + event,
                ts_ns=int(now * 1e9),
                category="server",
                **args,
            )


class SessionManager:
    """Create/run/step/query/close lifecycle over a dict registry."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        base_seed: int = DEFAULT_BASE_SEED,
        telemetry_session: Optional[TelemetrySession] = None,
    ) -> None:
        self.clock = clock
        self.idle_timeout_s = idle_timeout_s
        self.base_seed = base_seed
        self.telemetry_session = telemetry_session
        self.stats = SessionStats()
        self._sessions: Dict[str, Session] = {}
        self._seq = 0

    # ---------------------------------------------------------------- queries

    @property
    def active_count(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        return sorted(self._sessions)

    def get(self, session_id: str) -> Optional[Session]:
        return self._sessions.get(session_id)

    def snapshot(self) -> Dict[str, int]:
        return self.stats.as_dict(self.active_count)

    # -------------------------------------------------------------- lifecycle

    def create(
        self,
        workload: str,
        collector: str,
        operations: int = DEFAULT_OPERATIONS,
        ops_per_step: Optional[int] = None,
        idle_timeout_s: Optional[float] = None,
        flight_recorder: Optional[int] = None,
    ) -> Session:
        self._seq += 1
        now = self.clock()
        session_key = "server-session(seq=%d, workload=%r, collector=%r)" % (
            self._seq,
            workload,
            collector,
        )
        seed = derive_seed(session_key, self.base_seed)
        recorder = (
            FlightRecorder(flight_recorder, policy=SESSION_RETENTION)
            if flight_recorder
            else None
        )
        session = Session(
            id="s-%06d" % self._seq,
            seq=self._seq,
            workload=workload,
            collector=collector,
            operations=operations,
            ops_per_step=ops_per_step if ops_per_step else operations,
            idle_timeout_s=(
                idle_timeout_s if idle_timeout_s is not None else self.idle_timeout_s
            ),
            created_at=now,
            last_used=now,
            trace_id=derive_trace_id(session_key, seed),
            recorder=recorder,
        )
        if recorder is not None:
            # per-session sink: own bounded ring, shared metrics registry
            scope = (
                self.telemetry_session.scoped(flight_recorder=recorder)
                if self.telemetry_session is not None
                else TelemetrySession(flight_recorder=recorder, record_trace=False)
            )
            session._scope = scope
            session.telemetry = scope.for_run(
                "session/%s" % session.id, trace_id=session.trace_id
            )
        self._sessions[session.id] = session
        self.stats.created += 1
        session.record(
            "create", now, workload=workload, collector=collector, seq=session.seq
        )
        return session

    def touch(self, session_id: str) -> Optional[Session]:
        session = self._sessions.get(session_id)
        if session is not None:
            session.last_used = self.clock()
        return session

    def note_job(self, session: Session, cell_key: str, trace_id: str) -> None:
        session.jobs += 1
        session.last_used = self.clock()
        self.stats.jobs += 1
        session.record(
            "job", session.last_used, cell_key=cell_key, job_trace_id=trace_id
        )

    def next_step(self, session: Session) -> int:
        """Claim the next step index (0-based) for a session."""
        step = session.steps
        session.steps += 1
        session.last_used = self.clock()
        self.stats.steps += 1
        session.record("step", session.last_used, step=step)
        return step

    def close(self, session_id: str) -> Optional[Session]:
        """Remove a session; ``None`` (never an error) when absent, so
        double-close and close-after-reap are harmless races."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return None
        self.stats.closed += 1
        session.record("close", self.clock(), steps=session.steps, jobs=session.jobs)
        return session

    def reap(self, now: Optional[float] = None) -> List[str]:
        """Remove every session idle past its timeout; returns the
        reaped ids (sorted, for deterministic logs)."""
        if now is None:
            now = self.clock()
        expired = sorted(
            sid
            for sid, session in self._sessions.items()
            if now - session.last_used > session.idle_timeout_s
        )
        for sid in expired:
            session = self._sessions.pop(sid)
            self.stats.reaped += 1
            session.record("reap", now, idle_s=now - session.last_used)
        return expired

"""CLI load/soak driver for a running fleet server.

Used by the ``server-smoke`` CI job and for manual soaks::

    rolp-bench serve --port 8413 --jobs 2 &
    PYTHONPATH=src python -m repro.server.loadgen \\
        --url http://127.0.0.1:8413 --clients 24 --jobs-per-client 2 \\
        --seed 7 --expect-serial --report-out loadgen_report.json

The plan is seeded (see :class:`repro.server.testing.LoadPlan`), so the
same invocation always submits the same session grid.  With
``--expect-serial`` the driver re-runs every planned cell serially
through a local :class:`~repro.bench.runner.Runner` and diffs the
server's canonical job payloads byte-for-byte — exit status 1 on any
divergence, which is the fleet-level analogue of the PR 4/7
equivalence gates.  Latency percentiles and 429 counts are *reported*
(and may be asserted by the caller with ``--max-p99-ms``); correctness
assertions never depend on timing.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.bench.runner import DEFAULT_BASE_SEED
from repro.server.testing import (
    HttpClient,
    LoadPlan,
    expected_payload_bytes,
    run_load,
)


def build_plan(args: argparse.Namespace) -> LoadPlan:
    return LoadPlan.generate(
        seed=args.seed,
        clients=args.clients,
        jobs_per_client=args.jobs_per_client,
        workloads=args.workloads,
        collectors=args.collectors,
        operations=args.operations,
        step_fraction=args.step_fraction,
    )


async def _wait_healthy(url: str, attempts: int = 50) -> None:
    client = HttpClient(url)
    for attempt in range(attempts):
        try:
            response = await client.get("/healthz")
            if response.status == 200:
                return
        except (ConnectionError, OSError):
            pass
        await asyncio.sleep(0.2)
    raise SystemExit("loadgen: server at %s never became healthy" % url)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rolp-server-loadgen",
        description="Deterministic load generator for rolp-bench serve.",
    )
    parser.add_argument("--url", required=True, help="server base url")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--jobs-per-client", type=int, default=1)
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED)
    parser.add_argument(
        "--base-seed",
        type=int,
        default=DEFAULT_BASE_SEED,
        help="the server's --seed (for the serial expectation)",
    )
    parser.add_argument("--operations", type=int, default=2_000)
    parser.add_argument("--step-fraction", type=float, default=0.5)
    parser.add_argument(
        "--workloads", nargs="*", default=["lucene", "graphchi-cc"]
    )
    parser.add_argument("--collectors", nargs="*", default=["g1", "rolp"])
    parser.add_argument(
        "--expect-serial",
        action="store_true",
        help="diff every payload against a local serial Runner (byte-identity gate)",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="fail if observed p99 request latency exceeds this bound",
    )
    parser.add_argument("--report-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    plan = build_plan(args)

    async def _run():
        await _wait_healthy(args.url)
        return await run_load(lambda planned: HttpClient(args.url), plan)

    report = asyncio.run(_run())

    document = report.as_dict()
    document["plan"] = {
        "seed": plan.seed,
        "clients": args.clients,
        "jobs_per_client": args.jobs_per_client,
    }

    status = 0
    if report.errors:
        print("loadgen: %d client errors" % len(report.errors), file=sys.stderr)
        for error in report.errors[:10]:
            print("  " + error, file=sys.stderr)
        status = 1
    total_planned = sum(len(c.jobs) for c in plan.clients)
    if report.jobs_completed != total_planned:
        print(
            "loadgen: %d/%d planned jobs completed"
            % (report.jobs_completed, total_planned),
            file=sys.stderr,
        )
        status = 1

    if args.expect_serial and status == 0:
        expected = expected_payload_bytes(plan, args.base_seed)
        mismatches = [
            index
            for index, (got, want) in enumerate(zip(report.payloads, expected))
            if got != want
        ]
        document["serial_equivalence"] = {
            "checked": len(expected),
            "mismatches": len(mismatches),
        }
        if mismatches:
            print(
                "loadgen: %d/%d payloads diverge from the serial Runner "
                "(first at plan index %d)"
                % (len(mismatches), len(expected), mismatches[0]),
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                "loadgen: %d payloads byte-identical to serial Runner"
                % len(expected),
                file=sys.stderr,
            )

    if args.max_p99_ms is not None and report.p99_ms() > args.max_p99_ms:
        print(
            "loadgen: p99 %.1fms exceeds bound %.1fms"
            % (report.p99_ms(), args.max_p99_ms),
            file=sys.stderr,
        )
        status = 1

    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("loadgen: report written to %s" % args.report_out, file=sys.stderr)

    print(
        "loadgen: clients=%d jobs=%d 429s=%d retries=%d p99=%.1fms"
        % (
            report.clients,
            report.jobs_completed,
            report.rejected_429,
            report.retries,
            report.p99_ms(),
        )
    )
    return status


if __name__ == "__main__":
    sys.exit(main())

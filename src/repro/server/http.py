"""Asyncio-streams HTTP/1.1 front end for :class:`ServerApp`.

Deliberately minimal and dependency-free: request line + headers +
``Content-Length`` bodies in, status line + JSON bodies out, keep-alive
by default (``Connection: close`` honoured).  Everything interesting —
routing, validation, backpressure, timeouts — lives in the transport-free
app; this module is only the codec, which is why the protocol and soak
suites can drive the app in-process and trust that the wire behaves the
same (one TCP round-trip test in the protocol suite pins the codec
itself).
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from repro.server.app import Request, Response, ServerApp
from repro.server.protocol import error_envelope


class _ProtocolError(Exception):
    """Unparseable request line or oversized body — answered with an
    error envelope and a closed connection."""

    def __init__(self, reason: str, detail: str) -> None:
        status, body = error_envelope(reason, detail)
        self.response = Response(status, body)
        super().__init__(detail)

#: hard cap on request bodies (1 MiB — jobs are small JSON documents)
MAX_BODY_BYTES = 1 << 20

#: hard cap on header lines per request (memory-exhaustion guard)
MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _encode_response(response: Response, keep_alive: bool) -> bytes:
    body = response.encoded()
    lines = [
        "HTTP/1.1 %d %s" % (response.status, _STATUS_TEXT.get(response.status, "")),
        "Content-Type: %s" % response.content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in response.headers.items():
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class HttpFrontend:
    """Bind a :class:`ServerApp` to a TCP listener."""

    def __init__(self, app: ServerApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        assert self._server is not None, "frontend not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, reap_interval_s: Optional[float] = None) -> None:
        await self.app.startup(reap_interval_s=reap_interval_s)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.app.shutdown()

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    # ----------------------------------------------------------------- codec

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request, keep_alive = await self._read_request(reader)
                except (_ProtocolError, ValueError, asyncio.LimitOverrunError) as exc:
                    # bare ValueError / LimitOverrunError = a request or
                    # header line over the StreamReader's 64 KiB limit
                    if not isinstance(exc, _ProtocolError):
                        exc = _ProtocolError(
                            "malformed-body",
                            "request or header line exceeds the stream limit",
                        )
                    writer.write(_encode_response(exc.response, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.app.handle(request)
                writer.write(_encode_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one request; ``(None, False)`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None, False
        try:
            method, target, version = line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise _ProtocolError("malformed-body", "unparseable request line")
        headers = {}
        header_lines = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            header_lines += 1
            if header_lines > MAX_HEADER_LINES:
                raise _ProtocolError(
                    "malformed-body",
                    "more than %d header lines" % MAX_HEADER_LINES,
                )
            if b":" in raw:
                name, _, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _ProtocolError("malformed-body", "unparseable Content-Length")
        if length < 0:
            raise _ProtocolError("malformed-body", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise _ProtocolError(
                "malformed-body", "request body exceeds %d bytes" % MAX_BODY_BYTES
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and not version.endswith("1.0")
        )
        request = Request(
            method=method,
            path=split.path,
            body=body,
            query=dict(parse_qsl(split.query)),
            headers=headers,
        )
        return request, keep_alive


def serve_main(
    host: str,
    port: int,
    app: ServerApp,
    reap_interval_s: Optional[float] = None,
    ready_message: bool = True,
) -> int:
    """Blocking entry point for ``rolp-bench serve``."""

    async def _run() -> None:
        frontend = HttpFrontend(app, host, port)
        await frontend.start(reap_interval_s=reap_interval_s)
        if ready_message:
            print(
                "rolp-bench serve: listening on http://%s:%d (Ctrl-C to stop)"
                % (host, frontend.bound_port),
                file=sys.stderr,
                flush=True,
            )
        try:
            await frontend.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await frontend.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("rolp-bench serve: shutting down", file=sys.stderr)
    return 0

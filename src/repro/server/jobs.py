"""Job → cell materialization and the canonical result payload.

A server *job* is a thin wrapper over one :class:`repro.bench.runner.Cell`:
clients either name a registered cell kind explicitly (``{"kind":
"trace_run", "params": {...}}``) or let a session's bound defaults fill
one in.  Everything the server returns for a job — ``result``,
``fingerprint``, ``seed``, ``trace_id`` — is computed here as a pure
function of the cell and the base seed, which is the whole byte-identity
contract: the same helpers build the *expected* payloads in the
deterministic soak tests and the ``server-smoke`` load generator, so
"server == serial Runner" is asserted byte-for-byte, not approximately.

The ``session_step`` cell kind registered here gives sessions an
incremental surface: step ``k`` of a session is its own deterministic
cell (the step index joins the cell key and hence the derived seed), so
two sessions bound to the same workload/collector share step results
through the ordinary runner memo and disk cache — sessions are
addressable, their work is content-addressed.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Dict, List, Optional, Sequence

from repro import COLLECTOR_NAMES
from repro.bench.runner import (
    Cell,
    Runner,
    cell_kind,
    derive_trace_id,
    make_cell,
    registered_cell_kinds,
    cell_implementation,
    shared_seed_scope,
)
from repro.bench.workload_registry import all_workload_names, run_big_workload


@cell_kind(
    "session_step",
    track=lambda p: "%s/%s#%d" % (p["workload"], p["collector"], p["step"]),
    seed_scope=shared_seed_scope("session_step", "collector"),
)
def _session_step_cell(seed, telemetry, workload, collector, operations, step):
    """One session step: a bounded, independently-seeded chunk of the
    session's bound workload.  ``step`` participates in the cell key
    (and therefore the seed), so successive steps replay distinct
    deterministic operation streams; ``collector`` is excluded from the
    seed scope so stepping the same session grid under different
    collectors stays a controlled comparison."""
    result, _ = run_big_workload(
        workload, collector, operations=operations, seed=seed, telemetry=telemetry
    )
    return {
        "workload": workload,
        "collector": collector,
        "step": step,
        "operations": result.operations,
        "elapsed_ms": result.elapsed_ms,
        "throughput_ops_s": result.throughput_ops_s,
        "pause_count": len(result.pauses),
        "total_pause_ms": sum(result.pause_ms),
        "gc_cycles": result.gc_cycles,
        "max_memory_bytes": result.max_memory_bytes,
    }


class JobValidationError(ValueError):
    """A job request that cannot become a valid cell; ``reason`` is the
    protocol error slug the app maps it to."""

    def __init__(self, reason: str, detail: str) -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(detail)


def _check_names(params: Dict[str, object]) -> None:
    workload = params.get("workload")
    if isinstance(workload, str) and workload not in all_workload_names():
        raise JobValidationError(
            "unknown-workload",
            "unknown workload %r (choose from: %s)"
            % (workload, ", ".join(all_workload_names())),
        )
    collector = params.get("collector")
    if isinstance(collector, str) and collector not in COLLECTOR_NAMES:
        raise JobValidationError(
            "unknown-collector",
            "unknown collector %r (choose from: %s)"
            % (collector, ", ".join(COLLECTOR_NAMES)),
        )


def build_cell(kind: str, params: Dict[str, object]) -> Cell:
    """Validate and materialize a job into a cell.

    Validation happens at admission time, *before* the job joins a
    batch: a bad job must 400 on its own, never poison the batch it
    would have been coalesced into.
    """
    kinds = registered_cell_kinds()
    if kind not in kinds:
        raise JobValidationError(
            "unknown-kind",
            "unknown cell kind %r (registered: %s)" % (kind, ", ".join(kinds)),
        )
    _check_names(params)
    try:
        cell = make_cell(kind, **params)
    except TypeError as exc:
        raise JobValidationError("invalid-params", str(exc))
    # the params must bind to the kind's implementation signature —
    # a missing or surplus parameter would TypeError mid-batch otherwise
    fn = cell_implementation(kind)
    try:
        inspect.signature(fn).bind(seed=0, telemetry=None, **params)
    except TypeError as exc:
        raise JobValidationError(
            "invalid-params", "params do not fit kind %r: %s" % (kind, exc)
        )
    return cell


# -------------------------------------------------------- canonical payloads

def canonical_json(payload) -> str:
    """The one canonical serialization (sorted keys, no whitespace) —
    fingerprints and byte-identity assertions both hash/compare this."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_fingerprint(result) -> str:
    """SHA-256 over the canonical JSON of a cell result."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


def job_payload(cell: Cell, seed: int, result) -> Dict[str, object]:
    """The deterministic ``job`` object of a job/step response.

    Depends only on ``(cell, seed, result)`` — no timestamps, no
    queue/batch/cache provenance — so a response body is byte-identical
    no matter how the job reached execution.
    """
    return {
        "cell_key": cell.key,
        "kind": cell.kind,
        "seed": seed,
        "trace_id": derive_trace_id(cell.key, seed),
        "fingerprint": result_fingerprint(result),
        "result": result,
    }


def expected_payloads(
    cells: Sequence[Cell],
    base_seed: int,
    runner: Optional[Runner] = None,
) -> List[Dict[str, object]]:
    """The payloads a conforming server must return for ``cells`` —
    computed by running them serially through a plain :class:`Runner`.
    The soak tests and the load generator diff server responses against
    this, byte-for-byte."""
    if runner is None:
        runner = Runner(jobs=1, cache=None, base_seed=base_seed)
    results = runner.run(list(cells))
    return [
        job_payload(cell, runner.seed_for(cell), result)
        for cell, result in zip(cells, results)
    ]

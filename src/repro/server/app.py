"""The transport-free fleet-server application.

:class:`ServerApp` maps ``(method, path, body)`` to a protocol-conformant
response — no sockets anywhere, so the protocol suite and the
deterministic soak tests drive it fully in-process through
:class:`repro.server.testing.TestClient`, and the HTTP front end
(:mod:`repro.server.http`) is a thin codec on top.

Request handling is uniform:

1. route — unknown path → 404 ``unknown-endpoint``; known path, wrong
   verb → 405 ``method-not-allowed``;
2. parse — non-JSON or non-object body → 400 ``malformed-body``;
3. validate — request-schema mismatch → 400 ``invalid-field`` with the
   offending path in ``detail``; semantic misfits get their own slugs
   (``unknown-kind``, ``unknown-workload``, ``invalid-params``, ...);
4. admit — the batcher's bounded queue may refuse with 429
   ``queue-full`` + ``Retry-After``;
5. execute — the job future resolves from a coalesced runner batch;
   ``request_timeout_s`` bounds the wait (504 ``timeout``; the job
   itself keeps its queue slot and still executes — timeouts abandon
   the *wait*, never corrupt the batch).

Every response body carries ``"schema": "rolp-bench/server/v1"``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bench.runner import Runner, make_cell
from repro.server import jobs as jobs_mod
from repro.server.batcher import (
    AdmissionQueueFull,
    BatchExecutionError,
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_LIMIT,
    JobBatcher,
    ServerStopping,
)
from repro.server.protocol import (
    REQUEST_SCHEMAS,
    SCHEMA,
    SchemaError,
    envelope,
    error_envelope,
    schema_document,
    validate,
)
from repro.server.sessions import (
    DEFAULT_IDLE_TIMEOUT_S,
    DEFAULT_OPERATIONS,
    Session,
    SessionManager,
)
from repro.telemetry import TelemetrySession

#: default wall-clock bound on one request's wait for its result
DEFAULT_REQUEST_TIMEOUT_S = 60.0

#: Retry-After seconds advertised with 429 responses
RETRY_AFTER_S = 1


@dataclass
class Request:
    """One parsed request, transport-agnostic."""

    method: str
    path: str
    body: bytes = b""
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    """One response: status + JSON body (or raw text for Prometheus)."""

    status: int
    body: Optional[dict] = None
    text: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def content_type(self) -> str:
        return "application/json" if self.text is None else "text/plain; charset=utf-8"

    def encoded(self) -> bytes:
        if self.text is not None:
            return self.text.encode()
        return (jobs_mod.canonical_json(self.body) + "\n").encode()


def _error(reason: str, detail: str, **headers: str) -> Response:
    status, body = error_envelope(reason, detail)
    return Response(status, body, headers=dict(headers))


class ServerApp:
    """Session manager + batcher + runner behind a JSON route table."""

    def __init__(
        self,
        runner: Optional[Runner] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_batch: int = DEFAULT_MAX_BATCH,
        request_timeout_s: Optional[float] = DEFAULT_REQUEST_TIMEOUT_S,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        clock=None,
        base_seed: Optional[int] = None,
    ) -> None:
        self.telemetry = TelemetrySession(record_trace=False)
        self.runner = runner if runner is not None else Runner(jobs=1, cache=None)
        # an explicit base_seed always wins, even over a supplied
        # runner's — every seed and trace id downstream derives from it
        if base_seed is not None:
            self.runner.base_seed = base_seed
        self.base_seed = self.runner.base_seed
        if self.runner.session is None:
            # bench_runner_* counters land in /metrics alongside ours
            self.runner.session = self.telemetry
        self.manager = SessionManager(
            **({"clock": clock} if clock is not None else {}),
            idle_timeout_s=idle_timeout_s,
            base_seed=self.base_seed,
            telemetry_session=self.telemetry,
        )
        self.batcher = JobBatcher(
            self.runner,
            queue_limit=queue_limit,
            max_batch=max_batch,
            metrics=self.telemetry.metrics,
        )
        self.request_timeout_s = request_timeout_s
        self._reaper_task: Optional[asyncio.Task] = None

    # -------------------------------------------------------------- lifecycle

    async def startup(self, reap_interval_s: Optional[float] = None) -> None:
        self.batcher.start()
        if reap_interval_s:
            self._reaper_task = asyncio.get_running_loop().create_task(
                self._reap_loop(reap_interval_s)
            )

    async def shutdown(self) -> None:
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        await self.batcher.stop()

    async def _reap_loop(self, interval_s: float) -> None:
        while True:
            await asyncio.sleep(interval_s)
            self.manager.reap()

    # ---------------------------------------------------------------- routing

    async def handle(self, request: Request) -> Response:
        """Dispatch one request; never raises — every failure mode is
        an error envelope."""
        try:
            response = await self._dispatch(request)
        except SchemaError as exc:
            response = _error("invalid-field", str(exc))
        except jobs_mod.JobValidationError as exc:
            response = _error(exc.reason, exc.detail)
        except AdmissionQueueFull as exc:
            response = _error(
                "queue-full",
                "admission queue at capacity (%d); retry after %ds"
                % (exc.capacity, RETRY_AFTER_S),
                **{"Retry-After": str(RETRY_AFTER_S)},
            )
        except asyncio.TimeoutError:
            response = _error(
                "timeout",
                "request exceeded the %.3fs deadline" % (self.request_timeout_s or 0),
            )
        except ServerStopping:
            response = _error("server-stopping", "server is shutting down")
        except BatchExecutionError as exc:
            response = _error("internal-error", str(exc))
        self._count_request(request, response.status)
        return response

    async def _dispatch(self, request: Request) -> Response:
        method = request.method.upper()
        parts = [part for part in request.path.split("/") if part]
        return await self._route(method, parts, request)

    def _count_request(self, request: Request, status: int) -> None:
        self.telemetry.metrics.counter(
            "server_requests_total", "requests by method and status"
        ).inc(1, method=request.method.upper(), status=status)

    async def _route(self, method: str, parts, request: Request) -> Response:
        if parts == ["healthz"]:
            if method != "GET":
                return _error("method-not-allowed", "healthz supports GET only")
            return self._healthz()
        if parts == ["metrics"]:
            if method != "GET":
                return _error("method-not-allowed", "metrics supports GET only")
            return self._metrics(request.query.get("format", "json"))
        if parts == ["v1", "schema"]:
            if method != "GET":
                return _error("method-not-allowed", "schema supports GET only")
            return Response(200, schema_document())
        if parts == ["v1", "sessions"]:
            if method == "POST":
                return await self._create_session(request)
            if method == "GET":
                return self._list_sessions()
            return _error("method-not-allowed", "sessions supports GET and POST")
        if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
            sid = parts[2]
            if method == "GET":
                return self._query_session(sid)
            if method == "DELETE":
                return self._close_session(sid)
            return _error("method-not-allowed", "session supports GET and DELETE")
        if len(parts) == 4 and parts[:2] == ["v1", "sessions"]:
            sid, action = parts[2], parts[3]
            if action == "run" and method == "POST":
                return await self._run_job(sid, request)
            if action == "step" and method == "POST":
                return await self._step(sid, request)
            if action == "close" and method == "POST":
                return self._close_session(sid)
            if action == "recording" and method == "GET":
                return self._recording(sid)
            if action in ("run", "step", "close", "recording"):
                return _error(
                    "method-not-allowed",
                    "%s supports %s only"
                    % (action, "GET" if action == "recording" else "POST"),
                )
        return _error(
            "unknown-endpoint", "no route for %s /%s" % (method, "/".join(parts))
        )

    # ------------------------------------------------------------------ bodies

    @staticmethod
    def _parse_body(request: Request, schema_name: str) -> dict:
        """Decode + schema-validate a JSON object body (empty = ``{}``)."""
        raw = request.body.strip()
        if not raw:
            body: object = {}
        else:
            try:
                body = json.loads(raw)
            except ValueError:
                raise jobs_mod.JobValidationError(
                    "malformed-body", "request body is not valid JSON"
                )
        if not isinstance(body, dict):
            raise jobs_mod.JobValidationError(
                "malformed-body",
                "request body must be a JSON object, got %s" % type(body).__name__,
            )
        validate(body, REQUEST_SCHEMAS[schema_name])
        return body

    # ------------------------------------------------------------- session ops

    async def _create_session(self, request: Request) -> Response:
        body = self._parse_body(request, "session_create")
        workload = body.get("workload", "lucene")
        collector = body.get("collector", "g1")
        # reuse the job-layer name checks so the slugs match everywhere
        jobs_mod._check_names({"workload": workload, "collector": collector})
        session = self.manager.create(
            workload=workload,
            collector=collector,
            operations=body.get("operations", DEFAULT_OPERATIONS),
            ops_per_step=body.get("ops_per_step"),
            idle_timeout_s=body.get("idle_timeout_s"),
            flight_recorder=body.get("flight_recorder"),
        )
        self.telemetry.metrics.counter(
            "server_sessions_created_total", "sessions created"
        ).inc()
        return Response(201, envelope("session", session.payload(self.manager.clock())))

    def _list_sessions(self) -> Response:
        now = self.manager.clock()
        sessions = [
            self.manager.get(sid).payload(now) for sid in self.manager.ids()
        ]
        body = envelope("sessions", sessions)
        body["count"] = len(sessions)
        return Response(200, body)

    def _require_session(self, sid: str) -> Session:
        session = self.manager.touch(sid)
        if session is None:
            raise jobs_mod.JobValidationError(
                "unknown-session", "no session %r (closed, reaped or never created)" % sid
            )
        return session

    def _query_session(self, sid: str) -> Response:
        session = self._require_session(sid)
        return Response(200, envelope("session", session.payload(self.manager.clock())))

    def _close_session(self, sid: str) -> Response:
        session = self.manager.close(sid)
        if session is None:
            return _error(
                "unknown-session", "no session %r (closed, reaped or never created)" % sid
            )
        self.telemetry.metrics.counter(
            "server_sessions_closed_total", "sessions closed by clients"
        ).inc()
        return Response(
            200,
            envelope(
                "closed",
                {
                    "id": session.id,
                    "steps": session.steps,
                    "jobs": session.jobs,
                    "trace_id": session.trace_id,
                },
            ),
        )

    def _recording(self, sid: str) -> Response:
        session = self._require_session(sid)
        if session.recorder is None:
            return _error(
                "recording-disabled",
                "session %s was created without flight_recorder" % sid,
            )
        body = envelope("events", [e.to_jsonl() for e in session.recorder.events()])
        body["session_id"] = session.id
        body["trace_id"] = session.trace_id
        body["counters"] = session.recorder.counters()
        return Response(200, body)

    # ---------------------------------------------------------------- job ops

    async def _await_result(self, future: "asyncio.Future") -> object:
        """Await an admitted job under the per-request deadline.  The
        shield keeps a timed-out job executing — a timeout abandons the
        *wait*, never tears a job out of a batch mid-flight."""
        if self.request_timeout_s is not None:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout_s
            )
        return await future

    async def _run_job(self, sid: str, request: Request) -> Response:
        session = self._require_session(sid)
        body = self._parse_body(request, "job")
        if "kind" in body:
            cell = jobs_mod.build_cell(body["kind"], body.get("params", {}))
        else:
            if "params" in body:
                raise jobs_mod.JobValidationError(
                    "invalid-field", "$.params: params requires kind"
                )
            cell = make_cell(
                "trace_run",
                workload=session.workload,
                collector=session.collector,
                operations=session.operations,
            )
        # admission may 429; only an *admitted* job counts against the
        # session (submit and note are synchronous — no interleaving)
        future = self.batcher.submit(cell)
        seed = self.runner.seed_for(cell)
        self.manager.note_job(session, cell.key, jobs_mod.derive_trace_id(cell.key, seed))
        result = await self._await_result(future)
        return Response(200, envelope("job", jobs_mod.job_payload(cell, seed, result)))

    async def _step(self, sid: str, request: Request) -> Response:
        session = self._require_session(sid)
        body = self._parse_body(request, "step")
        ops = body.get("ops", session.ops_per_step)
        # peek the next step index, admit, then claim — all synchronous,
        # so a 429 rejection never burns an index and concurrent steps
        # on one session cannot race the counter
        step = session.steps
        cell = make_cell(
            "session_step",
            workload=session.workload,
            collector=session.collector,
            operations=ops,
            step=step,
        )
        future = self.batcher.submit(cell)
        claimed = self.manager.next_step(session)
        if claimed != step:
            raise BatchExecutionError(
                "step counter raced on session %s: claimed %d, expected %d"
                % (session.id, claimed, step)
            )
        seed = self.runner.seed_for(cell)
        result = await self._await_result(future)
        payload = jobs_mod.job_payload(cell, seed, result)
        response = envelope("job", payload)
        response["step"] = step
        return Response(200, response)

    # ------------------------------------------------------------- monitoring

    def _healthz(self) -> Response:
        return Response(
            200,
            {
                "schema": SCHEMA,
                "status": "ok",
                "accepting": self.batcher.depth < self.batcher.queue_limit,
                "sessions_active": self.manager.active_count,
                "queue_depth": self.batcher.depth,
            },
        )

    def _metrics(self, fmt: str) -> Response:
        if fmt == "prometheus":
            return Response(200, text=self.telemetry.metrics.to_prometheus())
        body = envelope("sessions", self.manager.snapshot())
        body["queue"] = {
            "depth": self.batcher.depth,
            "capacity": self.batcher.queue_limit,
            "accepted": self.batcher.accepted,
            "rejected": self.batcher.rejected,
        }
        body["batcher"] = self.batcher.counters()
        body["metrics"] = self.telemetry.metrics.to_json()
        return Response(200, body)

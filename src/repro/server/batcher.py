"""Bounded admission queue + coalescing batch executor.

Small jobs are expensive to run one-at-a-time (each ``Runner.run`` call
crosses into an executor thread and possibly a worker pool), so the
server admits jobs into a bounded queue and a single worker task drains
them in *batches* of up to ``max_batch``, handing each batch to one
:meth:`repro.bench.runner.Runner.run_async` call.  Coalescing changes
throughput only, never results: cells are content-addressed (kind +
params + derived seed), the runner memo/cache deduplicates identical
cells inside and across batches, and the per-job payload is a pure
function of the cell — so a job's bytes are identical whether it ran
alone, in a batch of 16, or was served from cache (the AppScale
datastore's BatchStatement coalescing is the exemplar; the determinism
contract is this repo's own).

Backpressure is explicit, not implicit: when the queue is full,
:meth:`JobBatcher.submit` raises :class:`AdmissionQueueFull` and the app
layer turns that into ``429`` + ``Retry-After`` — an *accepted* job, by
contrast, is never dropped: it either resolves with its result or fails
with the batch's error.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, List, NamedTuple, Optional

from repro.bench.runner import Cell, Runner
from repro.telemetry import MetricsRegistry

#: default admission-queue capacity (jobs waiting for a batch slot)
DEFAULT_QUEUE_LIMIT = 64

#: default maximum jobs coalesced into one runner call
DEFAULT_MAX_BATCH = 16


class AdmissionQueueFull(Exception):
    """The bounded admission queue is at capacity — the caller should
    back off and retry (HTTP 429 + Retry-After)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        super().__init__("admission queue at capacity (%d)" % capacity)


class BatchExecutionError(Exception):
    """The batch a job was coalesced into failed to execute."""


class ServerStopping(Exception):
    """The batcher was stopped while this job was still queued."""


class _Job(NamedTuple):
    cell: Cell
    future: "asyncio.Future"


class JobBatcher:
    """One worker task draining a bounded queue into runner batches.

    All methods must be called from the event loop thread.  ``pause()``
    / ``resume()`` exist for the deterministic backpressure tests: a
    paused batcher admits jobs until the queue fills, which makes the
    429 path exactly reproducible without racing the worker.
    """

    def __init__(
        self,
        runner: Runner,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.runner = runner
        self.queue_limit = max(1, int(queue_limit))
        self.max_batch = max(1, int(max_batch))
        self.metrics = metrics
        self._queue: Deque[_Job] = deque()
        self._wake = asyncio.Event()
        self._paused = False
        self._stopped = False
        self._worker_task: Optional[asyncio.Task] = None
        # single worker thread: serializes every Runner.run call (the
        # runner is not thread-safe); parallelism comes from the
        # runner's own --jobs worker pool inside each batch
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="rolp-batch"
        )
        # monotonic books: accepted == resolved + failed + abandoned + queued
        self.accepted = 0
        self.rejected = 0
        self.batches = 0
        self.completed = 0
        self.failed = 0
        self.abandoned = 0

    # -------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._worker_task is None:
            self._worker_task = asyncio.get_running_loop().create_task(self._worker())

    async def stop(self) -> None:
        """Stop the worker: the batch already in flight finishes, then
        every job still queued fails with :class:`ServerStopping` (it
        was never executed, and saying so beats hanging its client)."""
        self._stopped = True
        self._wake.set()
        if self._worker_task is not None:
            await self._worker_task
            self._worker_task = None
        while self._queue:
            job = self._queue.popleft()
            self.abandoned += 1
            if not job.future.done():
                job.future.set_exception(ServerStopping())
        self._executor.shutdown(wait=True)

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._wake.set()

    # -------------------------------------------------------------- admission

    @property
    def depth(self) -> int:
        return len(self._queue)

    def counters(self) -> dict:
        """The full monotonic ledger (also exported under ``/metrics``)."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "batches": self.batches,
            "completed": self.completed,
            "failed": self.failed,
            "abandoned": self.abandoned,
            "max_batch": self.max_batch,
        }

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "server_queue_depth", "jobs waiting in the admission queue"
            ).set(len(self._queue))

    def submit(self, cell: Cell) -> "asyncio.Future":
        """Admit one job; returns the future resolving to its cell
        result.  Raises :class:`AdmissionQueueFull` when the queue is at
        capacity — the job was *not* admitted."""
        if self._stopped:
            raise ServerStopping()
        if len(self._queue) >= self.queue_limit:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "server_jobs_rejected_total", "jobs refused with 429 queue-full"
                ).inc()
            raise AdmissionQueueFull(self.queue_limit)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append(_Job(cell, future))
        self.accepted += 1
        if self.metrics is not None:
            self.metrics.counter(
                "server_jobs_accepted_total", "jobs admitted to the queue"
            ).inc()
        self._gauge()
        self._wake.set()
        return future

    # -------------------------------------------------------------- execution

    async def _worker(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._stopped:
                return
            # the _stopped check keeps stop() honest: the in-flight batch
            # finishes, but still-queued jobs are abandoned to stop()'s
            # ServerStopping sweep instead of draining arbitrarily long
            while self._queue and not self._paused and not self._stopped:
                batch: List[_Job] = [
                    self._queue.popleft()
                    for _ in range(min(self.max_batch, len(self._queue)))
                ]
                self._gauge()
                cells = [job.cell for job in batch]
                try:
                    results = await self.runner.run_async(cells, self._executor)
                except Exception as exc:  # fail the batch, keep serving
                    self.failed += len(batch)
                    error = BatchExecutionError(
                        "batch of %d failed: %s" % (len(batch), exc)
                    )
                    error.__cause__ = exc
                    for job in batch:
                        if not job.future.done():
                            job.future.set_exception(error)
                    continue
                self.batches += 1
                self.completed += len(batch)
                if self.metrics is not None:
                    self.metrics.counter(
                        "server_batches_total", "coalesced runner batches executed"
                    ).inc()
                    self.metrics.histogram(
                        "server_batch_size",
                        (1, 2, 4, 8, 16, 32, 64),
                        "jobs coalesced per runner batch",
                    ).observe(len(batch))
                for job, result in zip(batch, results):
                    if not job.future.done():  # client may have timed out
                        job.future.set_result(result)

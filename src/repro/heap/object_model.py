"""Simulated heap objects.

A :class:`SimObject` stands in for a Java object on the simulated heap.
It carries:

* the 64-bit header (allocation context, age, bias/lock bits) that ROLP
  reads and writes — see :mod:`repro.heap.header`;
* its size in bytes, used for region accounting and copy costs;
* a hidden *death time* assigned by the workload.  This is the liveness
  oracle: the collector uses it to decide reachability (trace-driven GC
  simulation), but the profiler never reads it — ROLP must infer
  lifetimes from survival counts exactly as in the paper.

Objects are deliberately lightweight (``__slots__``) because large-scale
workloads allocate millions of them per run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.heap import header as hdr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heap.region import Region

#: Death time meaning "still referenced; lifetime unknown/unbounded yet".
IMMORTAL = float("inf")

# Header field constants, bound locally: SimObject's header accessors
# run once per object per GC cycle (millions of times per workload), so
# they inline the bit operations instead of calling into the header
# module.  The formulas are the same ones header.py defines; the
# property suite pins the equivalence.
_MASK_32 = hdr.MASK_32
_CONTEXT_SHIFT = hdr.CONTEXT_SHIFT
_AGE_MASK = hdr.AGE_MASK
_AGE_SHIFT = hdr.AGE_SHIFT
_AGE_ONE = 1 << hdr.AGE_SHIFT
_BIASED_MASK = hdr.BIASED_MASK


class SimObject:
    """A single simulated object.

    Parameters
    ----------
    size:
        Object size in bytes (header included).
    alloc_time_ns:
        Virtual time of allocation.
    death_time_ns:
        Virtual time at which the workload drops the last reference.
        ``IMMORTAL`` while unknown; workloads may shorten it later via
        :meth:`kill_at` (e.g. a memtable flush frees its entries).
    context:
        32-bit allocation context installed in the header (0 when the
        allocation site is not profiled, e.g. cold code).
    """

    __slots__ = (
        "size",
        "alloc_time_ns",
        "death_time_ns",
        "header",
        "region",
        "copies",
    )

    def __init__(
        self,
        size: int,
        alloc_time_ns: int,
        death_time_ns: float = IMMORTAL,
        context: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("object size must be positive")
        self.size = int(size)
        self.alloc_time_ns = int(alloc_time_ns)
        self.death_time_ns = death_time_ns
        # == hdr.fresh_header(context), inlined for the allocation path
        self.header = (context & _MASK_32) << _CONTEXT_SHIFT
        #: back-pointer to the region currently holding this object
        self.region: Optional["Region"] = None
        #: number of times the object has been copied by the GC
        self.copies = 0

    # -- liveness oracle ----------------------------------------------------

    def is_live(self, now_ns: int) -> bool:
        """Ground-truth reachability at virtual time ``now_ns``."""
        return self.death_time_ns > now_ns

    def kill_at(self, death_time_ns: float) -> None:
        """Workload callback: the last reference is dropped at this time."""
        if death_time_ns < self.alloc_time_ns:
            raise ValueError("object cannot die before it is allocated")
        self.death_time_ns = death_time_ns

    # -- header convenience --------------------------------------------------

    @property
    def age(self) -> int:
        return (self.header & _AGE_MASK) >> _AGE_SHIFT

    @property
    def context(self) -> int:
        return (self.header >> _CONTEXT_SHIFT) & _MASK_32

    @property
    def biased_locked(self) -> bool:
        return bool(self.header & _BIASED_MASK)

    def grow_older(self) -> None:
        """Survive one GC cycle (age saturates at :data:`header.MAX_AGE`)."""
        # == hdr.increment_age(self.header), inlined for the copy loops
        header = self.header
        if (header & _AGE_MASK) != _AGE_MASK:
            self.header = header + _AGE_ONE

    def bias_lock(self, thread_pointer: int) -> None:
        """Bias-lock toward a thread, clobbering the profiling context."""
        self.header = hdr.bias_lock(self.header, thread_pointer)

    def lifetime_ns(self) -> float:
        """Ground-truth lifetime (oracle only; not visible to ROLP)."""
        return self.death_time_ns - self.alloc_time_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimObject(size=%d, ctx=0x%08x, age=%d)" % (
            self.size,
            self.context,
            self.age,
        )

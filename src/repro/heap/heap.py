"""Region-based heap manager.

Owns the region table, hands out allocation regions per space, and keeps
aggregate accounting (used bytes, per-space region counts, max footprint).
Collectors sit on top of this: they decide *which* regions to evacuate;
the heap provides the mechanism (claim region, allocate, reset).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.heap.object_model import SimObject
from repro.heap.region import DEFAULT_REGION_BYTES, Region, Space


class SimOutOfMemoryError(MemoryError):
    """Raised when no free region can satisfy an allocation.

    Subclasses :class:`MemoryError` so generic handlers still work, but
    the prefixed name keeps simulated-heap exhaustion visually distinct
    from the interpreter's own memory errors at ``except`` sites.
    """


#: Deprecated pre-rename spelling; the bare JVM name shadows the
#: semantics of the ``MemoryError`` builtin at import sites.
OutOfMemoryError = SimOutOfMemoryError  # rolp-lint: allow[builtin-shadowing]


class RegionHeap:
    """A fixed-capacity heap carved into equal regions.

    Parameters
    ----------
    capacity_bytes:
        Total heap size (the paper's workloads use 6 GB; DaCapo sizes per
        Table 2).
    region_bytes:
        Region size; objects larger than half a region are treated as
        humongous and get dedicated regions.
    """

    def __init__(
        self,
        capacity_bytes: int,
        region_bytes: int = DEFAULT_REGION_BYTES,
    ) -> None:
        if capacity_bytes < region_bytes:
            raise ValueError("heap must hold at least one region")
        self.region_bytes = region_bytes
        self.regions: List[Region] = [
            Region(i, region_bytes) for i in range(capacity_bytes // region_bytes)
        ]
        self._free: List[Region] = list(reversed(self.regions))
        #: current allocation region per (space, gen)
        self._alloc_region: Dict[Tuple[Space, int], Region] = {}
        #: high-water mark of committed (non-free) bytes
        self.max_committed_bytes = 0
        self._committed_regions = 0
        #: humongous threshold, hoisted off the per-allocation path
        self._humongous_bytes = region_bytes // 2
        self._capacity_bytes = len(self.regions) * region_bytes
        # Incrementally maintained per-space region counts.  Sound
        # because a region's space only ever changes through
        # claim_region (FREE -> space, via Region.retarget) and
        # release_region (space -> FREE, via Region.reset); the heap
        # verifier cross-checks these against a region walk.
        self._space_counts: Dict[Space, int] = {space: 0 for space in Space}
        self._space_counts[Space.FREE] = len(self.regions)

    # -- capacity -----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_bytes

    @property
    def free_regions(self) -> int:
        return len(self._free)

    @property
    def committed_bytes(self) -> int:
        return self._committed_regions * self.region_bytes

    def used_bytes(self) -> int:
        return sum(r.used for r in self.regions if r.space is not Space.FREE)

    def regions_in(self, space: Space, gen: Optional[int] = None) -> List[Region]:
        return [
            r
            for r in self.regions
            if r.space is space and (gen is None or r.gen == gen)
        ]

    def region_count(self, space: Space) -> int:
        """Number of regions currently in ``space``, O(1).

        Equals ``len(self.regions_in(space))`` without the region-table
        walk; the collectors' per-allocation triggering checks use this
        on their fast path.
        """
        return self._space_counts[space]

    def occupancy(self) -> float:
        """Committed fraction of total heap capacity."""
        return self._committed_regions * self.region_bytes / self._capacity_bytes

    # -- verifier views (read-only snapshots of internal state) --------------

    def free_list(self) -> Tuple[Region, ...]:
        """Snapshot of the free list, in pop order (for the verifier)."""
        return tuple(self._free)

    def alloc_region_map(self) -> Dict[Tuple[Space, int], Region]:
        """Snapshot of the per-(space, gen) bump-allocation cache."""
        return dict(self._alloc_region)

    # -- region lifecycle ----------------------------------------------------

    def claim_region(self, space: Space, gen: int = 0) -> Region:
        """Take a region off the free list for ``space``."""
        if not self._free:
            raise SimOutOfMemoryError(
                "heap exhausted: %d regions, none free" % len(self.regions)
            )
        region = self._free.pop()
        region.retarget(space, gen)
        self._committed_regions += 1
        counts = self._space_counts
        counts[Space.FREE] -= 1
        counts[space] += 1
        committed = self._committed_regions * self.region_bytes
        if committed > self.max_committed_bytes:
            self.max_committed_bytes = committed
        return region

    def release_region(self, region: Region) -> None:
        """Reclaim a region wholesale (all contents garbage or evacuated)."""
        if region.space is Space.FREE:
            raise ValueError("region %d already free" % region.index)
        key = (region.space, region.gen)
        if self._alloc_region.get(key) is region:
            del self._alloc_region[key]
        counts = self._space_counts
        counts[region.space] -= 1
        counts[Space.FREE] += 1
        region.reset()
        self._free.append(region)
        self._committed_regions -= 1

    def current_alloc_region(self, space: Space, gen: int = 0) -> Optional[Region]:
        """The region currently receiving bump allocations for a space
        (None when the next allocation will claim a fresh region)."""
        return self._alloc_region.get((space, gen))

    def retire_alloc_region(self, space: Space, gen: int = 0) -> None:
        """Stop bump-allocating into the current region for ``space``.

        Evacuation calls this before copying so that to-space copies go
        into freshly claimed regions, never into a from-space region.
        """
        self._alloc_region.pop((space, gen), None)

    # -- allocation ----------------------------------------------------------

    def is_humongous(self, size: int) -> bool:
        return size > self.region_bytes // 2

    def allocate(self, obj: SimObject, space: Space, gen: int = 0) -> Region:
        """Allocate ``obj`` into ``space`` (bump pointer; claims regions
        as needed).  Humongous objects get dedicated regions.
        """
        if obj.size > self._humongous_bytes:  # == is_humongous(obj.size)
            return self._allocate_humongous(obj)
        key = (space, gen)
        region = self._alloc_region.get(key)
        if region is None or not region.has_room(obj.size):
            region = self.claim_region(space, gen)
            self._alloc_region[key] = region
        region.allocate(obj)
        return region

    def _allocate_humongous(self, obj: SimObject) -> Region:
        if obj.size > self.region_bytes:
            # Spanning humongous objects are modelled as a single logical
            # region with stretched capacity; accounting stays correct
            # because used == capacity for the claimed footprint.
            spanned = -(-obj.size // self.region_bytes)
            if spanned > self.free_regions:
                raise SimOutOfMemoryError("no room for humongous object")
            region = self.claim_region(Space.HUMONGOUS)
            region.capacity = spanned * self.region_bytes
            # account for the extra physically-claimed regions
            for _ in range(spanned - 1):
                extra = self.claim_region(Space.HUMONGOUS)
                extra.capacity = 0
            region.allocate(obj)
            return region
        region = self.claim_region(Space.HUMONGOUS)
        region.allocate(obj)
        return region

    # -- statistics ------------------------------------------------------------

    def space_summary(self, now_ns: int) -> Dict[str, Dict[str, int]]:
        """Per-space used/live/garbage byte totals (for reports/tests)."""
        summary: Dict[str, Dict[str, int]] = defaultdict(
            lambda: {"regions": 0, "used": 0, "live": 0}
        )
        for region in self.regions:
            if region.space is Space.FREE:
                continue
            name = region.space.value
            if region.space is Space.DYNAMIC:
                name = "gen%d" % region.gen
            entry = summary[name]
            entry["regions"] += 1
            entry["used"] += region.used
            entry["live"] += region.live_bytes(now_ns)
        return dict(summary)

"""Heap regions.

The simulated heap is region-based, like G1: fixed-size regions that each
belong to one space at a time (eden, survivor, old, humongous, or one of
NG2C's dynamic generations).  A region tracks the objects bump-allocated
into it; the collector queries live/garbage byte counts against the
liveness oracle to choose collection sets and compute copy costs.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional

from repro.heap.object_model import SimObject

#: Default region size (1 MB, G1's default for small heaps).
DEFAULT_REGION_BYTES = 1 << 20


class Space(enum.Enum):
    """The space (logical owner) a region currently belongs to."""

    FREE = "free"
    EDEN = "eden"
    SURVIVOR = "survivor"
    OLD = "old"
    HUMONGOUS = "humongous"
    #: NG2C dynamic generation; the region additionally carries ``gen``.
    DYNAMIC = "dynamic"


class Region:
    """One fixed-size heap region."""

    __slots__ = ("index", "capacity", "space", "gen", "used", "objects")

    def __init__(self, index: int, capacity: int = DEFAULT_REGION_BYTES) -> None:
        self.index = index
        self.capacity = capacity
        self.space = Space.FREE
        #: dynamic-generation number (1..14) when ``space is DYNAMIC``;
        #: 0 for the young gen and 15 for old, mirroring NG2C's numbering.
        self.gen = 0
        self.used = 0
        self.objects: List[SimObject] = []

    # -- allocation -----------------------------------------------------------

    def has_room(self, size: int) -> bool:
        return self.used + size <= self.capacity

    def allocate(self, obj: SimObject) -> None:
        """Bump-allocate ``obj`` into this region."""
        if not self.has_room(obj.size):
            raise MemoryError(
                "region %d: %d bytes requested, %d free"
                % (self.index, obj.size, self.capacity - self.used)
            )
        self.objects.append(obj)
        obj.region = self
        self.used += obj.size

    # -- accounting -----------------------------------------------------------

    def live_bytes(self, now_ns: int) -> int:
        """Bytes occupied by objects still reachable at ``now_ns``."""
        return sum(o.size for o in self.objects if o.is_live(now_ns))

    def garbage_bytes(self, now_ns: int) -> int:
        """Bytes occupied by dead objects (reclaimable by evacuation)."""
        return self.used - self.live_bytes(now_ns)

    def live_objects(self, now_ns: int) -> Iterator[SimObject]:
        return (o for o in self.objects if o.is_live(now_ns))

    def occupancy(self) -> float:
        """Fraction of the region's capacity that has been allocated."""
        return self.used / self.capacity if self.capacity else 0.0

    def fragmentation(self, now_ns: int) -> float:
        """Fraction of *allocated* bytes that are garbage.

        A fully live or fully dead region has no fragmentation cost: it
        is either kept or reclaimed wholesale.  Mixed regions are the
        expensive ones — their live objects must be copied out.
        """
        if self.used == 0:
            return 0.0
        return self.garbage_bytes(now_ns) / self.used

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Return the region to the free list (contents reclaimed)."""
        for obj in self.objects:
            obj.region = None
        self.objects.clear()
        self.used = 0
        self.space = Space.FREE
        self.gen = 0

    def retarget(self, space: Space, gen: int = 0) -> None:
        """Claim a free region for a space (optionally a dynamic gen)."""
        if self.space is not Space.FREE:
            raise ValueError(
                "region %d is %s, not free" % (self.index, self.space.value)
            )
        self.space = space
        self.gen = gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Region(%d, %s%s, %d/%d)" % (
            self.index,
            self.space.value,
            ":%d" % self.gen if self.space is Space.DYNAMIC else "",
            self.used,
            self.capacity,
        )

"""Heap fragmentation metrics.

Section 6 of the paper: when the lifetime of objects allocated through a
context *decreases*, the only visible symptom is rising fragmentation in
the regions those objects were pretenured into — dead objects stranded
among live ones.  The collector reports fragmentation at the end of each
tracing cycle; ROLP then identifies the offending allocation contexts and
decrements their estimated lifetimes.

This module computes those per-space and per-context fragmentation
figures from the region table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.heap.region import Region, Space


def space_fragmentation(regions: Iterable[Region], now_ns: int) -> Dict[Tuple[Space, int], float]:
    """Garbage fraction of allocated bytes, keyed by ``(space, gen)``.

    Only allocated bytes count: empty regions are free capacity, not
    fragmentation.
    """
    used: Dict[Tuple[Space, int], int] = defaultdict(int)
    garbage: Dict[Tuple[Space, int], int] = defaultdict(int)
    for region in regions:
        if region.space is Space.FREE or region.used == 0:
            continue
        key = (region.space, region.gen)
        used[key] += region.used
        garbage[key] += region.garbage_bytes(now_ns)
    return {key: garbage[key] / used[key] for key in used}


def fragmented_regions(
    regions: Iterable[Region], now_ns: int, threshold: float = 0.25
) -> List[Region]:
    """Regions whose garbage fraction exceeds ``threshold``.

    These are the regions whose live objects will have to be evacuated,
    i.e. the ones that generate copy cost.
    """
    return [
        r
        for r in regions
        if r.space is not Space.FREE and r.used > 0 and r.fragmentation(now_ns) > threshold
    ]


def dead_bytes_by_context(regions: Iterable[Region], now_ns: int) -> Dict[int, int]:
    """Dead bytes per allocation context across ``regions``.

    Context 0 (unprofiled allocations) is skipped — there is no
    profiling decision to revise for it; biased-locked headers carry a
    clobbered context and are skipped too.
    """
    blame: Dict[int, int] = defaultdict(int)
    for region in regions:
        for obj in region.objects:
            if obj.is_live(now_ns):
                continue
            context = obj.context
            if context and not obj.biased_locked:
                blame[context] += obj.size
    return dict(blame)


def guilty_contexts(
    regions: Iterable[Region], now_ns: int, threshold: float = 0.25
) -> Dict[int, int]:
    """Allocation contexts responsible for fragmentation, with dead bytes.

    For each over-threshold region, attribute its *dead* bytes to the
    allocation contexts of the dead objects.  ROLP uses this map to
    decrement the estimated lifetime of over-tenured contexts
    (Section 6).
    """
    return dead_bytes_by_context(fragmented_regions(regions, now_ns, threshold), now_ns)

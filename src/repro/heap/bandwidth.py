"""Memory-bandwidth copy-cost model.

The paper's core latency argument is that GC pause times are dominated by
object copying (promotion and compaction) which is bound by physical
memory bandwidth — a resource growing much more slowly than core counts
and memory capacity.  This module turns bytes-copied into simulated pause
nanoseconds.

The model is deliberately simple and explicit:

* copying ``B`` bytes with ``T`` parallel GC threads takes
  ``B / (bandwidth * scalability(T))`` seconds,
* every pause also pays fixed stop-the-world costs (safepoint sync, root
  scanning) plus a per-region scan cost,
* parallel scaling is sub-linear (``T ** alpha``) because the threads
  contend for the same memory channels.

Absolute numbers are calibrated to a commodity Xeon-class server (the
paper's E5505 testbed); benchmark shapes are invariant to the constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthModel:
    """Cost model turning GC work into pause durations.

    Attributes
    ----------
    copy_bandwidth_bytes_per_s:
        Effective single-thread compaction bandwidth.  Copying is far
        slower than a raw ``memcpy`` because of pointer fixups, card and
        remembered-set maintenance; ~1 GB/s is representative.
    gc_threads:
        Number of parallel GC worker threads.
    parallel_alpha:
        Scaling exponent; ``T`` threads yield ``T ** alpha`` speedup.
    safepoint_ns:
        Fixed cost to bring mutator threads to a safepoint and resume.
    root_scan_ns:
        Fixed cost to scan thread stacks and global roots.
    region_scan_ns:
        Per-region cost to scan a collection-set region's metadata.
    survivor_profile_ns:
        Extra cost, per surviving object, of ROLP's survivor-processing
        code (header read + OLD table update).  Paid only while survivor
        tracking is enabled (Section 7.4).
    """

    copy_bandwidth_bytes_per_s: float = 1.0e9
    gc_threads: int = 4
    parallel_alpha: float = 0.7
    safepoint_ns: float = 150_000.0
    root_scan_ns: float = 400_000.0
    region_scan_ns: float = 30_000.0
    survivor_profile_ns: float = 55.0

    def parallel_speedup(self) -> float:
        return max(1.0, float(self.gc_threads)) ** self.parallel_alpha

    def copy_ns(self, bytes_copied: int) -> float:
        """Time to evacuate ``bytes_copied`` with all GC threads."""
        if bytes_copied <= 0:
            return 0.0
        effective = self.copy_bandwidth_bytes_per_s * self.parallel_speedup()
        return bytes_copied / effective * 1e9

    def pause_ns(
        self,
        bytes_copied: int,
        regions_scanned: int,
        survivors_profiled: int = 0,
    ) -> float:
        """Total stop-the-world pause for one collection."""
        return (
            self.safepoint_ns
            + self.root_scan_ns
            + regions_scanned * self.region_scan_ns
            + self.copy_ns(bytes_copied)
            + survivors_profiled * self.survivor_profile_ns
        )

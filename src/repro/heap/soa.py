"""Array-of-structs heap hot state for the compiled backend.

Per-``SimObject`` attribute access dominates the GC copy loops once the
interpreter is out of the way: each survivor costs a handful of Python
attribute loads and stores (header read-modify-write, ``copies`` bump,
size accumulation).  The compiled backend mirrors the hot header fields
into parallel columns — one dense slot per object — so the generational
copy loop and survivor scan become numpy column sweeps
(:meth:`repro.gc.generational.GenerationalCollector._collect_young_soa`
and :meth:`repro.core.profiler.RolpProfiler.on_gc_survivors_soa`).

:class:`ColumnObject` is the lazily-materialized per-object view: it has
the full :class:`~repro.heap.object_model.SimObject` interface (header
bits, liveness oracle, region back-pointer), so workloads, the heap
verifier, region accounting, biased locking, and every non-vectorized
collector path work on it unchanged.  Only ``header`` / ``death_time_ns``
/ ``copies`` indirect into the columns; ``size``, ``alloc_time_ns`` and
``region`` stay plain slots (they are written once, or only by Python
code, so mirroring them would buy nothing).

Slots are monotonic — dead objects are *not* recycled.  Workloads hold
references to objects the collector has already discarded (that is the
point of the death-time oracle), and a freelist would let a new object
alias a dead object's columns through such a stale view.  The columns
are ``array.array`` (compact, C-typed); the vectorized sweeps wrap them
in zero-copy ``numpy.frombuffer`` views created per collection, never
held across appends (growth reallocates the buffer).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Optional

from repro.heap import header as hdr
from repro.heap.object_model import IMMORTAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heap.region import Region

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover - degraded environments
    _np = None

#: the vectorized sweeps need numpy; without it the compiled backend
#: keeps the plain object model (collectors check this flag)
HAVE_NUMPY = _np is not None

_MASK_32 = hdr.MASK_32
_CONTEXT_SHIFT = hdr.CONTEXT_SHIFT
_AGE_MASK = hdr.AGE_MASK
_AGE_SHIFT = hdr.AGE_SHIFT
_AGE_ONE = 1 << hdr.AGE_SHIFT
_BIASED_MASK = hdr.BIASED_MASK


class ColumnObject:
    """A :class:`~repro.heap.object_model.SimObject`-compatible view of
    one slot in :class:`ObjectColumns`."""

    __slots__ = ("_c", "slot", "size", "alloc_time_ns", "region")

    def __init__(
        self,
        columns: "ObjectColumns",
        slot: int,
        size: int,
        alloc_time_ns: int,
    ) -> None:
        self._c = columns
        self.slot = slot
        self.size = size
        self.alloc_time_ns = alloc_time_ns
        self.region: Optional["Region"] = None

    # -- mirrored hot fields -------------------------------------------------

    @property
    def header(self) -> int:
        return self._c.headers[self.slot]

    @header.setter
    def header(self, value: int) -> None:
        self._c.headers[self.slot] = value

    @property
    def death_time_ns(self) -> float:
        return self._c.death[self.slot]

    @death_time_ns.setter
    def death_time_ns(self, value: float) -> None:
        self._c.death[self.slot] = value

    @property
    def copies(self) -> int:
        return self._c.copies[self.slot]

    @copies.setter
    def copies(self, value: int) -> None:
        self._c.copies[self.slot] = value

    # -- liveness oracle (== SimObject) --------------------------------------

    def is_live(self, now_ns: int) -> bool:
        return self._c.death[self.slot] > now_ns

    def kill_at(self, death_time_ns: float) -> None:
        if death_time_ns < self.alloc_time_ns:
            raise ValueError("object cannot die before it is allocated")
        self._c.death[self.slot] = death_time_ns

    # -- header convenience (== SimObject) -----------------------------------

    @property
    def age(self) -> int:
        return (self._c.headers[self.slot] & _AGE_MASK) >> _AGE_SHIFT

    @property
    def context(self) -> int:
        return (self._c.headers[self.slot] >> _CONTEXT_SHIFT) & _MASK_32

    @property
    def biased_locked(self) -> bool:
        return bool(self._c.headers[self.slot] & _BIASED_MASK)

    def grow_older(self) -> None:
        headers = self._c.headers
        header = headers[self.slot]
        if (header & _AGE_MASK) != _AGE_MASK:
            headers[self.slot] = header + _AGE_ONE

    def bias_lock(self, thread_pointer: int) -> None:
        headers = self._c.headers
        headers[self.slot] = hdr.bias_lock(headers[self.slot], thread_pointer)

    def lifetime_ns(self) -> float:
        return self._c.death[self.slot] - self.alloc_time_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ColumnObject(slot=%d, size=%d, ctx=0x%08x, age=%d)" % (
            self.slot,
            self.size,
            self.context,
            self.age,
        )


class ObjectColumns:
    """Dense parallel columns for the GC-hot object fields.

    ``allocate`` has the :class:`~repro.heap.object_model.SimObject`
    constructor signature (plus returning a view), so the collector can
    treat it as a drop-in object factory.
    """

    __slots__ = ("headers", "sizes", "death", "copies")

    def __init__(self) -> None:
        #: 64-bit object headers (context | age | bias bits)
        self.headers = array("Q")
        #: object sizes in bytes
        self.sizes = array("q")
        #: death-time oracle; IMMORTAL (inf) while unknown
        self.death = array("d")
        #: times each object has been GC-copied
        self.copies = array("q")

    def __len__(self) -> int:
        return len(self.headers)

    def allocate(
        self,
        size: int,
        alloc_time_ns: int,
        death_time_ns: float = IMMORTAL,
        context: int = 0,
    ) -> ColumnObject:
        """Append one object; mirrors ``SimObject.__init__`` exactly."""
        if size <= 0:
            raise ValueError("object size must be positive")
        size = int(size)
        slot = len(self.headers)
        self.headers.append((context & _MASK_32) << _CONTEXT_SHIFT)
        self.sizes.append(size)
        self.death.append(death_time_ns)
        self.copies.append(0)
        return ColumnObject(self, slot, size, int(alloc_time_ns))

"""Region-based simulated heap substrate.

Public surface: the 64-bit header bit model, simulated objects, regions,
the region heap, the bandwidth cost model, and fragmentation metrics.
"""

from repro.heap.bandwidth import BandwidthModel
from repro.heap.fragmentation import (
    fragmented_regions,
    guilty_contexts,
    space_fragmentation,
)
# OutOfMemoryError is the deprecated alias of SimOutOfMemoryError.
from repro.heap.heap import (  # rolp-lint: allow[builtin-shadowing]
    OutOfMemoryError,
    RegionHeap,
    SimOutOfMemoryError,
)
from repro.heap.object_model import IMMORTAL, SimObject
from repro.heap.region import DEFAULT_REGION_BYTES, Region, Space

__all__ = [
    "BandwidthModel",
    "DEFAULT_REGION_BYTES",
    "IMMORTAL",
    "OutOfMemoryError",
    "Region",
    "RegionHeap",
    "SimObject",
    "SimOutOfMemoryError",
    "Space",
    "fragmented_regions",
    "guilty_contexts",
    "space_fragmentation",
]

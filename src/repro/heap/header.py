r"""64-bit object header model (HotSpot mark word as used by ROLP).

The paper (Figure 2) lays the header out, from the most significant bit
down to the least significant bit, as::

    63 .......... 48 47 .......... 32 31 ...... 7 6 ... 3  2       1..0
    allocation site  thread stack st.  identity    age    biased   lock
                                       hash                -lock   bits
    \------ allocation context ------/

ROLP stores the 32-bit allocation context (16-bit allocation-site
identifier concatenated with the 16-bit thread-stack-state) in the upper
32 bits, which HotSpot otherwise only uses for biased locking.  When an
object becomes biased locked the thread pointer overwrites the context
and the object is discarded for profiling purposes.

The functions in this module are pure bit manipulation on Python ints
masked to 64 bits; they are the single source of truth for the layout and
are exercised heavily by property-based tests.
"""

from __future__ import annotations

MASK_64 = (1 << 64) - 1
MASK_32 = (1 << 32) - 1
MASK_16 = (1 << 16) - 1

# -- bit positions (from Figure 2 of the paper) ----------------------------
LOCK_SHIFT = 0
LOCK_BITS = 2
BIASED_SHIFT = 2          # "bit number 3" in the paper's 1-based numbering
AGE_SHIFT = 3
AGE_BITS = 4
HASH_SHIFT = 7
HASH_BITS = 25
CONTEXT_SHIFT = 32
CONTEXT_BITS = 32
STACK_STATE_SHIFT = 32    # low half of the context
SITE_SHIFT = 48           # high half of the context

LOCK_MASK = ((1 << LOCK_BITS) - 1) << LOCK_SHIFT
BIASED_MASK = 1 << BIASED_SHIFT
AGE_MASK = ((1 << AGE_BITS) - 1) << AGE_SHIFT
HASH_MASK = ((1 << HASH_BITS) - 1) << HASH_SHIFT
CONTEXT_MASK = MASK_32 << CONTEXT_SHIFT

#: Maximum object age representable in the 4 age bits.  HotSpot stops
#: incrementing the age once it reaches this value; ROLP uses it as the
#: number of columns in the Object Lifetime Distribution table.
MAX_AGE = (1 << AGE_BITS) - 1  # 15

#: Number of distinct ages (0..15), i.e. OLD-table columns and NG2C
#: generations.
NUM_AGES = MAX_AGE + 1  # 16


def pack_context(site_id: int, stack_state: int) -> int:
    """Combine a 16-bit allocation-site id and a 16-bit thread stack state
    into the 32-bit allocation context.
    """
    return ((site_id & MASK_16) << 16) | (stack_state & MASK_16)


def context_site(context: int) -> int:
    """Extract the allocation-site identifier from a 32-bit context."""
    return (context >> 16) & MASK_16


def context_stack_state(context: int) -> int:
    """Extract the thread-stack-state half from a 32-bit context."""
    return context & MASK_16


def install_context(header: int, context: int) -> int:
    """Write a 32-bit allocation context into the upper header bits."""
    return ((header & ~CONTEXT_MASK) | ((context & MASK_32) << CONTEXT_SHIFT)) & MASK_64


def extract_context(header: int) -> int:
    """Read the 32-bit allocation context from the upper header bits."""
    return (header >> CONTEXT_SHIFT) & MASK_32


def get_age(header: int) -> int:
    """Read the 4-bit object age."""
    return (header & AGE_MASK) >> AGE_SHIFT


def set_age(header: int, age: int) -> int:
    """Write the 4-bit object age (clamped to ``MAX_AGE``)."""
    age = min(max(age, 0), MAX_AGE)
    return ((header & ~AGE_MASK) | (age << AGE_SHIFT)) & MASK_64


def increment_age(header: int) -> int:
    """Advance the age by one GC cycle, saturating at ``MAX_AGE``.

    Optimised to a single branch-and-add: while the age field is not
    saturated, adding ``1 << AGE_SHIFT`` cannot carry out of the field,
    so the masked read-modify-write of the reference implementation
    (:func:`increment_age_reference`) collapses to one addition.  The
    property suite asserts equality over the full 64-bit domain.
    """
    if (header & AGE_MASK) != AGE_MASK:
        return header + (1 << AGE_SHIFT)
    return header


def increment_age_reference(header: int) -> int:
    """Reference implementation of :func:`increment_age` (the original
    masked read-modify-write), kept for the differential header kernel
    and the property-based equivalence tests."""
    return set_age(header, get_age(header) + 1)


def is_biased_locked(header: int) -> bool:
    """True when the biased-lock bit is set (profiling bits are invalid)."""
    return bool(header & BIASED_MASK)


def bias_lock(header: int, thread_pointer: int) -> int:
    """Bias-lock the object toward a thread.

    HotSpot stores the owning thread's pointer in the upper header bits;
    this *overwrites* any allocation context ROLP installed there, which
    is exactly the profiling-information loss the paper accepts
    (Section 3.2.2).
    """
    header = install_context(header, thread_pointer & MASK_32)
    return (header | BIASED_MASK) & MASK_64


def revoke_bias(header: int) -> int:
    """Clear the biased-lock bit.

    The stale thread pointer is left in the context bits: from the
    profiler's point of view the context is now corrupted and will be
    discarded unless it accidentally matches an OLD-table entry (the rare
    mistaken-reuse scenario described in the paper).
    """
    return header & ~BIASED_MASK & MASK_64


def get_identity_hash(header: int) -> int:
    """Read the 25-bit identity hash field."""
    return (header & HASH_MASK) >> HASH_SHIFT


def set_identity_hash(header: int, value: int) -> int:
    """Write the 25-bit identity hash field."""
    value &= (1 << HASH_BITS) - 1
    return ((header & ~HASH_MASK) | (value << HASH_SHIFT)) & MASK_64


def fresh_header(context: int = 0, age: int = 0) -> int:
    """Build a header for a newly allocated object.

    The common (``age == 0``) case is one mask-and-shift: installing a
    context into an all-zero header cannot touch any other field, so
    the general read-modify-write of :func:`fresh_header_reference`
    collapses to ``(context & MASK_32) << CONTEXT_SHIFT``.
    """
    header = (context & MASK_32) << CONTEXT_SHIFT
    if age:
        header = set_age(header, age)
    return header


def fresh_header_reference(context: int = 0, age: int = 0) -> int:
    """Reference implementation of :func:`fresh_header`, kept for the
    differential header kernel and the property-based tests."""
    header = install_context(0, context)
    if age:
        header = set_age(header, age)
    return header

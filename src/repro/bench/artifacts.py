"""Machine-readable artifacts for every table and figure.

Each ``*_payload`` function turns an experiment's in-memory result into
a plain JSON-serializable structure, emitted next to the text rendering
so bench trajectories can be diffed across PRs (``--json-dir``) and the
whole invocation can be captured in one document (``--metrics-out``).

The payloads carry exactly the numbers the text tables print — the
pause-study payload, in particular, is built from the same
:class:`~repro.bench.figures.PauseStudy` objects Figure 8/9 render, so
the JSON histogram totals always match the text output.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Sequence

SCHEMA = "rolp-bench/v1"


def table1_payload(rows) -> Dict[str, object]:
    return {"rows": [asdict(row) for row in rows]}


def table2_payload(rows) -> Dict[str, object]:
    return {"rows": [asdict(row) for row in rows]}


def figure6_payload(series: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    return {"normalized_time": {name: dict(row) for name, row in series.items()}}


def figure7_payload(series: Dict[str, Dict[float, float]]) -> Dict[str, object]:
    return {
        "worst_case_ms": {
            name: {"%g" % (p * 100): value for p, value in row.items()}
            for name, row in series.items()
        }
    }


def pause_study_payload(studies: Sequence) -> Dict[str, object]:
    """Figure 8/9 data: per workload × collector, the percentile profile
    and the duration histogram, straight from the rendered studies."""
    workloads: Dict[str, object] = {}
    for study in studies:
        percentiles = study.percentiles()
        histograms = study.histograms()
        collectors: Dict[str, object] = {}
        for collector, pauses in study.pauses_ms.items():
            collectors[collector] = {
                "pause_count": len(pauses),
                "total_pause_ms": sum(pauses),
                "percentiles": {
                    "%g" % pct: value for pct, value in percentiles[collector].items()
                },
                "histogram": [
                    {"interval_ms": label, "count": count}
                    for label, count in histograms[collector]
                ],
            }
        workloads[study.workload] = {"collectors": collectors}
    return {"workloads": workloads}


def figure10_payload(study) -> Dict[str, object]:
    return {
        "rolp_timeline": [
            {"start_s": start, "duration_ms": duration}
            for start, duration in study.rolp_timeline
        ],
        "throughput_norm": dict(study.throughput_norm),
        "memory_norm": dict(study.memory_norm),
        "decision_changes": list(study.decision_changes),
    }


def ablation_payload(results) -> List[Dict[str, object]]:
    return [asdict(result) for result in results]


def trace_payload(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    return {"runs": [dict(row) for row in rows]}


def write_json(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

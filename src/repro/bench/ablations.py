"""Ablation benches for the design choices DESIGN.md calls out.

Each returns the measured effect of disabling one ROLP mechanism on the
Cassandra WI workload — the knobs the paper motivates in Sections 7.2-7.4
and the generation-count comparison against two-generation pretenuring
(Harris/Memento, Section 9).

Each variant is one :mod:`repro.bench.runner` cell (kind ``ablation``),
so the sweeps fan out across workers and cache like every other
experiment; only the offline-profiling comparison stays a single cell,
because its POLM2 replay consumes the profile captured by its own
online run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import PackageFilter, RolpConfig
from repro.heap.header import MAX_AGE
from repro.metrics.pauses import percentile
from repro.workloads.base import RunResult, run_workload
from repro.workloads.kvstore import CassandraWorkload
from repro.bench.config import CASSANDRA_OPS, scaled_ops
from repro.bench.runner import (
    Runner,
    cell_kind,
    make_cell,
    run_cells,
    shared_seed_scope,
)


@dataclass
class AblationResult:
    label: str
    p50_ms: float
    p999_ms: float
    throughput_ops_s: float
    gc_cycles: int
    extra: Dict[str, float]

    @classmethod
    def from_run(cls, label: str, result: RunResult, **extra) -> "AblationResult":
        pauses = result.pause_ms
        return cls(
            label=label,
            p50_ms=percentile(pauses, 50.0),
            p999_ms=percentile(pauses, 99.9),
            throughput_ops_s=result.throughput_ops_s,
            gc_cycles=result.gc_cycles,
            extra=dict(extra),
        )


def _run(
    config: Optional[RolpConfig] = None,
    operations: Optional[int] = None,
    seed: Optional[int] = None,
):
    kwargs = {} if seed is None else {"seed": seed}
    workload = CassandraWorkload.write_intensive(**kwargs)
    # Ablations need the profile fully converged *and* a stretch of
    # steady state afterwards (e.g. the survivor-tracking shutdown
    # requires several consecutive stable inference passes), so they run
    # longer than the pause studies.
    ops = operations or scaled_ops(int(CASSANDRA_OPS * 1.6))
    result = run_workload(workload, "rolp", operations=ops, rolp_config=config)
    return result, workload


def _wi_filter() -> PackageFilter:
    return CassandraWorkload.write_intensive().package_filter()


@cell_kind(
    "ablation",
    track=lambda p: "ablation/%s/%s" % (p["study"], p["label"]),
    # within one study only the knob under test may vary, or the
    # "profiling decisions unchanged" comparisons measure seed noise
    seed_scope=shared_seed_scope(
        "ablation", "label", "dynamic", "filtered", "min_age", "loss", "rate"
    ),
)
def _ablation_cell(seed, telemetry, study, label, operations, **knobs) -> AblationResult:
    """One ablation variant: build the study's config from its scalar
    knobs (cell params must stay scalars), run, summarize."""
    if study == "survivor_tracking":
        config = RolpConfig(
            package_filter=_wi_filter(),
            dynamic_survivor_tracking=knobs["dynamic"],
        )
        result, workload = _run(config, operations, seed)
        return AblationResult.from_run(
            label,
            result,
            shutdowns=workload.vm.profiler.survivor_controller.shutdowns,
        )
    if study == "package_filters":
        config = RolpConfig(
            package_filter=_wi_filter()
            if knobs["filtered"]
            else PackageFilter.accept_all(),
        )
        result, workload = _run(config, operations, seed)
        return AblationResult.from_run(
            label,
            result,
            profiled_sites=workload.vm.jit.profiled_alloc_site_count,
            profiling_tax_ms=workload.vm.profiling_tax_ns / 1e6,
        )
    if study == "generations":
        config = RolpConfig(
            package_filter=_wi_filter(),
            pretenure_min_age=knobs["min_age"],
        )
        result, _ = _run(config, operations, seed)
        return AblationResult.from_run(label, result)
    if study == "increment_loss":
        config = RolpConfig(
            package_filter=_wi_filter(),
            increment_loss_probability=knobs["loss"],
        )
        result, workload = _run(config, operations, seed)
        return AblationResult.from_run(
            label,
            result,
            lost=workload.vm.profiler.old_table.lost_increments,
            advice=len(workload.vm.profiler.advice),
        )
    if study == "allocation_sampling":
        config = RolpConfig(
            package_filter=_wi_filter(),
            allocation_sample_rate=knobs["rate"],
            # keep curves above the inference gate despite thin samples
            min_samples=max(4, 32 // knobs["rate"]),
        )
        result, workload = _run(config, operations, seed)
        return AblationResult.from_run(
            label,
            result,
            profiling_tax_ms=round(workload.vm.profiling_tax_ns / 1e6, 2),
            advice=len(workload.vm.profiler.advice),
            skipped=workload.vm.profiler.allocations_skipped,
        )
    raise ValueError("unknown ablation study %r" % study)


def _study_cells(study: str, variants: Sequence[Dict[str, object]]):
    operations = scaled_ops(int(CASSANDRA_OPS * 1.6))
    return [
        make_cell("ablation", study=study, operations=operations, **variant)
        for variant in variants
    ]


def ablation_survivor_tracking(runner: Optional[Runner] = None) -> List[AblationResult]:
    """Section 7.4: dynamic survivor-tracking shutdown on vs always-on."""
    return run_cells(
        _study_cells(
            "survivor_tracking",
            [
                {"label": "dynamic (paper)", "dynamic": True},
                {"label": "always-on", "dynamic": False},
            ],
        ),
        runner,
    )


def ablation_package_filters(runner: Optional[Runner] = None) -> List[AblationResult]:
    """Section 7.3: package filters on (paper) vs profile-everything."""
    return run_cells(
        _study_cells(
            "package_filters",
            [
                {"label": "filtered (paper)", "filtered": True},
                {"label": "profile-everything", "filtered": False},
            ],
        ),
        runner,
    )


def ablation_generations(runner: Optional[Runner] = None) -> List[AblationResult]:
    """Two-generation pretenuring (Harris/Memento-style binary decision,
    Section 9) vs ROLP's 16 generations.

    The binary variant collapses every non-zero estimate to the old
    generation, co-locating objects with very different lifetimes.
    """
    return run_cells(
        _study_cells(
            "generations",
            [
                {"label": "16 generations (paper)", "min_age": 2},
                # any estimate >= 15 -> old only
                {"label": "binary pretenuring", "min_age": MAX_AGE},
            ],
        ),
        runner,
    )


def ablation_increment_loss(runner: Optional[Runner] = None) -> List[AblationResult]:
    """Section 7.6: unsynchronized OLD-table updates.  Sweeps the
    modelled increment-loss probability to show decisions are robust."""
    return run_cells(
        _study_cells(
            "increment_loss",
            [
                {"label": "loss=%g" % loss, "loss": loss}
                for loss in (0.0, 0.0005, 0.01, 0.05)
            ],
        ),
        runner,
    )


def ablation_allocation_sampling(runner: Optional[Runner] = None) -> List[AblationResult]:
    """Section 8.5's named extension: sample 1/N of allocations.

    Sweeps the sampling rate, showing the profiling tax falling while
    the learned decisions stay intact (until the sample gets too thin
    for the inference minimum-sample gate)."""
    return run_cells(
        _study_cells(
            "allocation_sampling",
            [{"label": "sample 1/%d" % rate, "rate": rate} for rate in (1, 4, 16)],
        ),
        runner,
    )


def ablation_offline_profile(runner: Optional[Runner] = None) -> List[AblationResult]:
    """POLM2-style offline profiling vs ROLP online profiling.

    Capture a profile from one ROLP run, then replay the workload with
    the static per-site decisions: zero warmup and zero profiling cost,
    but conflicted sites collapse to one conservative decision — the
    trade-off the paper's Sections 9/10 describe.

    One cell, not two: the offline replay consumes the profile captured
    by the online run, so the pair is not independently schedulable.
    """
    cells = [make_cell("ablation_offline", operations=scaled_ops(CASSANDRA_OPS))]
    return run_cells(cells, runner)[0]


@cell_kind("ablation_offline", track=lambda p: "ablation/offline_profile")
def _ablation_offline_cell(seed, telemetry, operations) -> List[AblationResult]:
    from repro.core.offline import OfflineAdviceProfiler, OfflineProfile
    from repro.gc import NG2CCollector
    from repro.heap import BandwidthModel, RegionHeap
    from repro.runtime import JavaVM
    from repro.metrics.pauses import percentile as _pct

    ops = operations

    # 1. the online (ROLP) run — also the capture run
    online_result, online_workload = _run(operations=ops, seed=seed)
    profile = OfflineProfile.capture(
        online_workload.vm.profiler, online_workload.vm
    )

    # 2. the offline-profiled run (POLM2 mode) — same seed, so the two
    # runs differ only in where the advice came from
    workload = CassandraWorkload.write_intensive(seed=seed)
    heap = RegionHeap(workload.heap_mb << 20)
    collector = NG2CCollector(
        heap,
        BandwidthModel(),
        young_regions=workload.young_regions,
        use_profiler_advice=True,
    )
    vm = JavaVM(collector, OfflineAdviceProfiler(profile))
    workload.build(vm)
    for op_index in range(ops):
        workload.run_op(op_index)

    offline_pauses = [p.duration_ms for p in collector.pauses]
    offline = AblationResult(
        label="offline profile (POLM2-style)",
        p50_ms=_pct(offline_pauses, 50.0),
        p999_ms=_pct(offline_pauses, 99.9),
        throughput_ops_s=ops / (vm.clock.now_ns / 1e9),
        gc_cycles=collector.gc_cycles,
        extra={
            "profile_sites": len(profile),
            "profiling_tax_ms": vm.profiling_tax_ns / 1e6,
        },
    )
    online = AblationResult.from_run(
        "online (ROLP)",
        online_result,
        profile_sites=len(profile),
        profiling_tax_ms=online_workload.vm.profiling_tax_ns / 1e6,
    )
    return [online, offline]


def render_ablation(results: Sequence[AblationResult], title: str) -> str:
    from repro.metrics.report import render_table

    extra_keys: List[str] = []
    for r in results:
        for key in r.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    rows = [
        [
            r.label,
            "%.2f" % r.p50_ms,
            "%.2f" % r.p999_ms,
            "%.0f" % r.throughput_ops_s,
            r.gc_cycles,
        ]
        + [r.extra.get(k, "-") for k in extra_keys]
        for r in results
    ]
    return "%s\n%s" % (
        title,
        render_table(
            ["variant", "p50 ms", "p99.9 ms", "ops/s", "GCs"] + extra_keys, rows
        ),
    )

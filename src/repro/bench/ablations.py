"""Ablation benches for the design choices DESIGN.md calls out.

Each returns the measured effect of disabling one ROLP mechanism on the
Cassandra WI workload — the knobs the paper motivates in Sections 7.2-7.4
and the generation-count comparison against two-generation pretenuring
(Harris/Memento, Section 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import PackageFilter, RolpConfig
from repro.heap.header import MAX_AGE
from repro.metrics.pauses import percentile
from repro.workloads.base import RunResult, run_workload
from repro.workloads.kvstore import CassandraWorkload
from repro.bench.config import CASSANDRA_OPS, scaled_ops


@dataclass
class AblationResult:
    label: str
    p50_ms: float
    p999_ms: float
    throughput_ops_s: float
    gc_cycles: int
    extra: Dict[str, float]

    @classmethod
    def from_run(cls, label: str, result: RunResult, **extra) -> "AblationResult":
        pauses = result.pause_ms
        return cls(
            label=label,
            p50_ms=percentile(pauses, 50.0),
            p999_ms=percentile(pauses, 99.9),
            throughput_ops_s=result.throughput_ops_s,
            gc_cycles=result.gc_cycles,
            extra=dict(extra),
        )


def _run(config: Optional[RolpConfig] = None, operations: Optional[int] = None):
    workload = CassandraWorkload.write_intensive()
    # Ablations need the profile fully converged *and* a stretch of
    # steady state afterwards (e.g. the survivor-tracking shutdown
    # requires several consecutive stable inference passes), so they run
    # longer than the pause studies.
    ops = operations or scaled_ops(int(CASSANDRA_OPS * 1.6))
    result = run_workload(workload, "rolp", operations=ops, rolp_config=config)
    return result, workload


def ablation_survivor_tracking() -> List[AblationResult]:
    """Section 7.4: dynamic survivor-tracking shutdown on vs always-on."""
    results = []
    for label, dynamic in (("dynamic (paper)", True), ("always-on", False)):
        config = RolpConfig(
            package_filter=CassandraWorkload.write_intensive().package_filter(),
            dynamic_survivor_tracking=dynamic,
        )
        result, workload = _run(config)
        results.append(
            AblationResult.from_run(
                label,
                result,
                shutdowns=workload.vm.profiler.survivor_controller.shutdowns,
            )
        )
    return results


def ablation_package_filters() -> List[AblationResult]:
    """Section 7.3: package filters on (paper) vs profile-everything."""
    results = []
    workload_filter = CassandraWorkload.write_intensive().package_filter()
    for label, pkg_filter in (
        ("filtered (paper)", workload_filter),
        ("profile-everything", PackageFilter.accept_all()),
    ):
        config = RolpConfig(package_filter=pkg_filter)
        result, workload = _run(config)
        results.append(
            AblationResult.from_run(
                label,
                result,
                profiled_sites=workload.vm.jit.profiled_alloc_site_count,
                profiling_tax_ms=workload.vm.profiling_tax_ns / 1e6,
            )
        )
    return results


def ablation_generations() -> List[AblationResult]:
    """Two-generation pretenuring (Harris/Memento-style binary decision,
    Section 9) vs ROLP's 16 generations.

    The binary variant collapses every non-zero estimate to the old
    generation, co-locating objects with very different lifetimes.
    """
    results = []
    for label, min_age in (
        ("16 generations (paper)", 2),
        ("binary pretenuring", MAX_AGE),  # any estimate >= 15 -> old only
    ):
        config = RolpConfig(
            package_filter=CassandraWorkload.write_intensive().package_filter(),
            pretenure_min_age=min_age,
        )
        result, _ = _run(config)
        results.append(AblationResult.from_run(label, result))
    return results


def ablation_increment_loss() -> List[AblationResult]:
    """Section 7.6: unsynchronized OLD-table updates.  Sweeps the
    modelled increment-loss probability to show decisions are robust."""
    results = []
    for loss in (0.0, 0.0005, 0.01, 0.05):
        config = RolpConfig(
            package_filter=CassandraWorkload.write_intensive().package_filter(),
            increment_loss_probability=loss,
        )
        result, workload = _run(config)
        results.append(
            AblationResult.from_run(
                "loss=%g" % loss,
                result,
                lost=workload.vm.profiler.old_table.lost_increments,
                advice=len(workload.vm.profiler.advice),
            )
        )
    return results


def ablation_allocation_sampling() -> List[AblationResult]:
    """Section 8.5's named extension: sample 1/N of allocations.

    Sweeps the sampling rate, showing the profiling tax falling while
    the learned decisions stay intact (until the sample gets too thin
    for the inference minimum-sample gate)."""
    results = []
    for rate in (1, 4, 16):
        config = RolpConfig(
            package_filter=CassandraWorkload.write_intensive().package_filter(),
            allocation_sample_rate=rate,
            # keep curves above the inference gate despite thin samples
            min_samples=max(4, 32 // rate),
        )
        result, workload = _run(config)
        results.append(
            AblationResult.from_run(
                "sample 1/%d" % rate,
                result,
                profiling_tax_ms=round(workload.vm.profiling_tax_ns / 1e6, 2),
                advice=len(workload.vm.profiler.advice),
                skipped=workload.vm.profiler.allocations_skipped,
            )
        )
    return results


def ablation_offline_profile() -> List[AblationResult]:
    """POLM2-style offline profiling vs ROLP online profiling.

    Capture a profile from one ROLP run, then replay the workload with
    the static per-site decisions: zero warmup and zero profiling cost,
    but conflicted sites collapse to one conservative decision — the
    trade-off the paper's Sections 9/10 describe.
    """
    from repro.core.offline import OfflineAdviceProfiler, OfflineProfile
    from repro.gc import NG2CCollector
    from repro.heap import BandwidthModel, RegionHeap
    from repro.runtime import JavaVM
    from repro.metrics.pauses import percentile as _pct

    ops = scaled_ops(CASSANDRA_OPS)

    # 1. the online (ROLP) run — also the capture run
    online_result, online_workload = _run(operations=ops)
    profile = OfflineProfile.capture(
        online_workload.vm.profiler, online_workload.vm
    )

    # 2. the offline-profiled run (POLM2 mode)
    workload = CassandraWorkload.write_intensive()
    heap = RegionHeap(workload.heap_mb << 20)
    collector = NG2CCollector(
        heap,
        BandwidthModel(),
        young_regions=workload.young_regions,
        use_profiler_advice=True,
    )
    vm = JavaVM(collector, OfflineAdviceProfiler(profile))
    workload.build(vm)
    for op_index in range(ops):
        workload.run_op(op_index)

    offline_pauses = [p.duration_ms for p in collector.pauses]
    offline = AblationResult(
        label="offline profile (POLM2-style)",
        p50_ms=_pct(offline_pauses, 50.0),
        p999_ms=_pct(offline_pauses, 99.9),
        throughput_ops_s=ops / (vm.clock.now_ns / 1e9),
        gc_cycles=collector.gc_cycles,
        extra={
            "profile_sites": len(profile),
            "profiling_tax_ms": vm.profiling_tax_ns / 1e6,
        },
    )
    online = AblationResult.from_run(
        "online (ROLP)",
        online_result,
        profile_sites=len(profile),
        profiling_tax_ms=online_workload.vm.profiling_tax_ns / 1e6,
    )
    return [online, offline]


def render_ablation(results: Sequence[AblationResult], title: str) -> str:
    from repro.metrics.report import render_table

    extra_keys: List[str] = []
    for r in results:
        for key in r.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    rows = [
        [
            r.label,
            "%.2f" % r.p50_ms,
            "%.2f" % r.p999_ms,
            "%.0f" % r.throughput_ops_s,
            r.gc_cycles,
        ]
        + [r.extra.get(k, "-") for k in extra_keys]
        for r in results
    ]
    return "%s\n%s" % (
        title,
        render_table(
            ["variant", "p50 ms", "p99.9 ms", "ops/s", "GCs"] + extra_keys, rows
        ),
    )

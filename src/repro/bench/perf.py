"""Hot-path microbenchmarks (``rolp-bench perf``).

Five named kernels time the simulator's hottest code paths — allocation,
method entry/exit, survivor tracking, header pack/unpack and the full-GC
copy loop — once per execution backend (``reference``, ``fast``,
``compiled``; see :mod:`repro.fastpath`).  Each kernel is driven by the
experiment runner as a triple of ``perf_kernel`` cells sharing one
derived seed (the ``backend`` is a treatment parameter), so every
backend replays the identical workload and the kernel doubles as a
differential test: every cell returns a *fingerprint* of the
simulation's observable state (counters, clocks, table checksums), and
all backends must produce byte-identical fingerprints.

The workload bodies are authored as :class:`MethodProgram` op arrays,
so the reference and fast backends replay them through the ordinary
``ctx.*`` entry points while the compiled backend executes them in the
table-dispatch loop (:mod:`repro.runtime.dispatch`) — same op stream,
three execution strategies.

Timing cells are deliberately **never cached**: a wall-clock measurement
replayed from a previous run's cache entry is not a measurement.  The
backend still participates in the shared result-cache key (see
``ResultCache.key_material``) so the figure/table equivalence suite can
populate every backend side by side.

``perf()`` returns the ``BENCH_6.json`` payload: per kernel, the
reference timing (the pre-optimisation baseline), the fast and compiled
timings, both speedups and the fingerprint verdict, plus the process's
peak RSS.  With ``repeat > 1`` each (kernel, backend) cell rebuilds its
fixture and re-times ``repeat`` times; reported ``ns_per_op`` is the
median and ``cv`` the coefficient of variation (population stdev /
mean) across runs, so noisy hosts are visible in the artifact.

Wall-clock use (``time.perf_counter``) is legitimate here: the bench
package is harness scope, outside the determinism lint's simulation-core
packages.
"""

from __future__ import annotations

import random
import resource
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import build_vm
from repro.bench.config import bench_scale, scaled_ops
from repro.bench.runner import (
    DEFAULT_BASE_SEED,
    Runner,
    cell_kind,
    make_cell,
    shared_seed_scope,
)
from repro.core.profiler import RolpConfig, RolpProfiler
from repro.fastpath import BACKENDS, backend, set_backend
from repro.gc.g1 import G1Collector
from repro.heap import header as hdr
from repro.heap.bandwidth import BandwidthModel
from repro.heap.heap import RegionHeap
from repro.heap.object_model import IMMORTAL, SimObject
from repro.heap.soa import HAVE_NUMPY
from repro.metrics.report import render_table
from repro.runtime.method import Method
from repro.runtime.program import ProgramBuilder
from repro.runtime.vm import JavaVM, VMFlags

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover - degraded environments
    _np = None

#: the kernel catalogue, in print order (docs/performance.md documents
#: exactly what each one exercises)
PERF_KERNELS = ("alloc", "call", "survivor", "header", "gc_copy")

#: unscaled operation budget per kernel (ROLP_BENCH_SCALE applies)
_BASE_OPS = {
    "alloc": 60_000,
    "call": 60_000,
    "survivor": 120_000,
    "header": 200_000,
    "gc_copy": 30_000,
}

#: default artifact path for the CLI's ``perf`` experiment
BENCH_JSON = "bench_results/BENCH_6.json"


def kernel_ops(kernel: str) -> int:
    """The scaled operation budget for one kernel."""
    return scaled_ops(_BASE_OPS[kernel])


# ----------------------------------------------------------------- fingerprints

def _table_checksum(table) -> int:
    """Order-independent digest of the OLD table's full contents."""
    checksum = 0
    for context in sorted(table.contexts()):
        checksum = (checksum * 1000003 + context) & hdr.MASK_64
        for value in table.curve(context):
            checksum = (checksum * 1000003 + value) & hdr.MASK_64
    return checksum


# ---------------------------------------------------------------------- kernels
#
# Each kernel is ``fn(seed, ops) -> run`` where ``run() -> (ops_done,
# fingerprint)``.  Fixture construction happens in the outer call
# (untimed — building 2048 seeded objects is not the hot path being
# measured); only ``run`` is timed.  The fingerprint must cover every
# observable the optimisations could have perturbed: clock totals
# (float repr — bit equality, not tolerance), RNG-dependent counters,
# table contents, stack states.  The ambient backend (set by
# :func:`run_kernel` before fixture construction) selects the execution
# strategy; the op stream is identical under all of them.

KernelRun = Callable[[], Tuple[int, Dict[str, object]]]


def _alloc_loop_method(sizes: List[int], lives: List[int]) -> Method:
    # body(ctx, start, count): for i in range(count): j = start + i;
    # ctx.alloc(j % 7, sizes[j % 997], lives[j % 991])
    builder = ProgramBuilder("allocLoop", nregs=2)
    builder.repeat(1, 0)
    builder.alloc_table(7, sizes, lives, 0)
    builder.end_repeat()
    return Method("allocLoop", "bench.perf.Alloc", builder.build(), bytecode_size=120)


def _call_tree_methods() -> Tuple[Method, Method, Method, Method]:
    # bytecode_size > inline_max_size keeps every site out of inlining,
    # so each carries a real stack-state increment once jitted
    leaf_a = Method(
        "leafA", "bench.perf.Call", ProgramBuilder("leafA").build(), bytecode_size=100
    )
    leaf_b = Method(
        "leafB", "bench.perf.Call", ProgramBuilder("leafB").build(), bytecode_size=100
    )
    mid = Method(
        "mid",
        "bench.perf.Call",
        ProgramBuilder("mid").call(1, leaf_a).call(2, leaf_b).build(),
        bytecode_size=100,
    )
    # root(ctx, count): for _ in range(count): ctx.call(1, mid); ctx.call(2, mid)
    root_builder = ProgramBuilder("root", nregs=2)
    root_builder.repeat(0, 1)
    root_builder.call(1, mid)
    root_builder.call(2, mid)
    root_builder.end_repeat()
    root = Method("root", "bench.perf.Call", root_builder.build(), bytecode_size=100)
    return root, mid, leaf_a, leaf_b


def _copy_fill_method(sizes: List[int]) -> Method:
    # fill(ctx, start, count): immortal allocs — survive every GC
    builder = ProgramBuilder("fill", nregs=2)
    builder.repeat(1, 0)
    builder.alloc_table(5, sizes, None, 0)
    builder.end_repeat()
    return Method("fill", "bench.perf.Copy", builder.build(), bytecode_size=120)


def kernel_programs(seed: int = 0) -> List[Tuple[Method, int]]:
    """The shipped perf-kernel root methods and their root arities.

    ``rolp-bench staticcheck`` verifies every :class:`MethodProgram`
    reachable from these roots; the kernels themselves build identical
    programs (same builders, same operand tables).
    """
    rng = random.Random(seed)
    alloc_sizes = [rng.choice((64, 128, 192, 256, 384, 512)) for _ in range(997)]
    alloc_lives = [rng.choice((5_000, 50_000, 500_000)) for _ in range(991)]
    copy_sizes = [rng.choice((96, 128, 160, 192, 256)) for _ in range(997)]
    return [
        (_alloc_loop_method(alloc_sizes, alloc_lives), 2),
        (_call_tree_methods()[0], 1),
        (_copy_fill_method(copy_sizes), 2),
    ]


def _kernel_alloc(seed: int, ops: int) -> KernelRun:
    """The allocation path: table-indexed ``ALLOC_T`` → context
    resolution → sampling → collector placement → header install →
    OLD-table increment."""
    rng = random.Random(seed)
    sizes = [rng.choice((64, 128, 192, 256, 384, 512)) for _ in range(997)]
    lives = [rng.choice((5_000, 50_000, 500_000)) for _ in range(991)]
    vm, profiler = build_vm(
        "rolp",
        heap_mb=64,
        region_kb=256,
        flags=VMFlags(compile_threshold=1),
    )
    thread = vm.spawn_thread("bench")

    method = _alloc_loop_method(sizes, lives)

    def run() -> Tuple[int, Dict[str, object]]:
        done = 0
        while done < ops:
            count = min(1_000, ops - done)
            vm.run(thread, method, done, count)
            done += count
        return done, {
            "allocations": vm.allocations,
            "bytes": vm.bytes_allocated,
            "gc_cycles": vm.collector.gc_cycles,
            "now_ns": vm.clock.now_ns,
            "tax": repr(vm.profiling_tax_ns),
            "table": _table_checksum(profiler.old_table),
            "survivals": profiler.survivals_recorded,
            "lost": profiler.old_table.lost_increments,
            "stack_state": thread.stack_state,
        }

    return run


def _kernel_call(seed: int, ops: int) -> KernelRun:
    """Method entry/exit: call-site bookkeeping, the stack-state add/sub
    slow path (mode ``slow``), frame push/pop, JIT invocation counting.
    The compiled backend executes the whole four-level call tree in one
    dispatch frame."""
    vm, _ = build_vm(
        "rolp",
        heap_mb=64,
        region_kb=256,
        flags=VMFlags(compile_threshold=10, call_profiling_mode="slow"),
    )
    thread = vm.spawn_thread("bench")

    root, mid, leaf_a, leaf_b = _call_tree_methods()
    # each root-body iteration performs 6 dynamic calls (2 mid + 4 leaf)
    iterations = max(1, ops // 6)

    def run() -> Tuple[int, Dict[str, object]]:
        done = 0
        while done < iterations:
            count = min(500, iterations - done)
            vm.run(thread, root, count)
            done += count
        return iterations * 6, {
            "invocations": [
                root.invocations,
                mid.invocations,
                leaf_a.invocations,
                leaf_b.invocations,
            ],
            "stack_state": thread.stack_state,
            "now_ns": vm.clock.now_ns,
            "tax": repr(vm.profiling_tax_ns),
            "compiled": len(vm.jit.compiled_methods),
        }

    return run


def _kernel_survivor(seed: int, ops: int) -> KernelRun:
    """Survivor tracking: the per-GC-worker buffering of survival
    records plus the end-of-pause merge into the OLD table (including
    the periodic inference pass).  The compiled backend feeds the same
    headers through the vectorized column scan
    (:meth:`~repro.core.profiler.RolpProfiler.on_gc_survivors_soa`)."""
    rng = random.Random(seed)
    profiler = RolpProfiler(RolpConfig(gc_workers=4))
    table = profiler.old_table
    for site_id in range(1, 65):
        table.register_site(site_id)
    objs: List[SimObject] = []
    for _ in range(2_048):
        # site 0 and sites 65..80 are unknown → validity-filter work;
        # a slice of biased-locked headers exercises the discard path
        context = hdr.pack_context(rng.randint(0, 80), rng.randint(0, 0xFFFF))
        obj = SimObject(64, 0, IMMORTAL, context)
        obj.header = hdr.set_age(obj.header, rng.randint(0, 15))
        if rng.random() < 0.05:
            obj.header = hdr.bias_lock(obj.header, 0xDEAD)
        objs.append(obj)
    batches = max(1, ops // len(objs))

    if backend() == "compiled" and HAVE_NUMPY:
        # the column scan consumes raw headers; same words, same order
        headers = _np.fromiter(
            (obj.header for obj in objs), _np.uint64, count=len(objs)
        )

        def scan() -> None:
            profiler.on_gc_survivors_soa(headers, 4)

    else:

        def scan() -> None:
            profiler.on_gc_survivors(objs, 4)

    def run() -> Tuple[int, Dict[str, object]]:
        for gc_number in range(1, batches + 1):
            scan()
            profiler.on_gc_end(gc_number, gc_number * 1_000_000, 1_000_000.0)
        return batches * len(objs), {
            "table": _table_checksum(table),
            "recorded": profiler.survivals_recorded,
            "discarded": profiler.survivals_discarded,
            "advice": len(profiler.advice),
            "inference_passes": profiler.inference.passes_run,
        }

    return run


def _kernel_header(seed: int, ops: int) -> KernelRun:
    """Header bit manipulation: the age increment and fresh-header
    construction the copy and allocation loops lean on.  The fast mode
    times the optimised scalar functions, the reference mode their
    ``*_reference`` twins, the compiled mode a vectorized column sweep;
    the accumulator proves they all compute the same words."""
    rng = random.Random(seed)
    headers = [rng.getrandbits(64) for _ in range(4_096)]
    contexts = [rng.getrandbits(32) for _ in range(4_096)]
    if backend() == "compiled" and HAVE_NUMPY:
        header_col = _np.array(headers, dtype=_np.uint64)
        context_col = _np.array(contexts, dtype=_np.uint64)
        age_mask = _np.uint64(hdr.AGE_MASK)
        age_one = _np.uint64(1 << hdr.AGE_SHIFT)

        def run() -> Tuple[int, Dict[str, object]]:
            # per-op term: increment_age(headers[j]) + fresh_header(contexts[j]);
            # modular addition is associative, so the checksum over `ops`
            # wrap-around passes is full_passes * column_sum + partial_sum
            aged = _np.where(
                (header_col & age_mask) != age_mask, header_col + age_one, header_col
            )
            fresh = (context_col & _np.uint64(hdr.MASK_32)) << _np.uint64(
                hdr.CONTEXT_SHIFT
            )
            terms = aged + fresh  # uint64: wraps mod 2**64 like the scalar loop
            full_passes, remainder = divmod(ops, len(headers))
            accumulator = (
                full_passes * int(terms.sum(dtype=_np.uint64))
                + int(terms[:remainder].sum(dtype=_np.uint64))
            ) & hdr.MASK_64
            return ops, {"checksum": accumulator}

        return run
    if backend() == "reference":
        increment, fresh = hdr.increment_age_reference, hdr.fresh_header_reference
    else:
        increment, fresh = hdr.increment_age, hdr.fresh_header

    def run() -> Tuple[int, Dict[str, object]]:
        accumulator = 0
        n = len(headers)
        mask = hdr.MASK_64
        for i in range(ops):
            j = i % n
            accumulator = (accumulator + increment(headers[j]) + fresh(contexts[j])) & mask
        return ops, {"checksum": accumulator}

    return run


def _kernel_gc_copy(seed: int, ops: int) -> KernelRun:
    """The young-GC copy loop: survivor profiling, aging, re-placement.
    A tenuring threshold above ``MAX_AGE`` pins every object in survivor
    space, so each forced collection re-copies the full live set.  Under
    the compiled backend the live set resides in SoA columns and the
    sweep vectorizes (:mod:`repro.heap.soa`)."""
    rng = random.Random(seed)
    heap = RegionHeap(64 << 20, 256 << 10)
    collector = G1Collector(
        heap, BandwidthModel(), young_regions=16, tenuring_threshold=20
    )
    profiler = RolpProfiler()
    vm = JavaVM(collector, profiler, VMFlags(compile_threshold=1))
    thread = vm.spawn_thread("bench")
    sizes = [rng.choice((96, 128, 160, 192, 256)) for _ in range(997)]

    method = _copy_fill_method(sizes)
    live_objects = 16_000
    done = 0
    while done < live_objects:
        count = min(1_000, live_objects - done)
        vm.run(thread, method, done, count)
        done += count

    def run() -> Tuple[int, Dict[str, object]]:
        copies = 0
        while copies < ops:
            collector.collect_young()
            copies = sum(p.survivors for p in collector.pauses)
        return copies, {
            "bytes_copied": collector.bytes_copied_total,
            "breakdown": dict(collector.copy_breakdown),
            "gc_cycles": collector.gc_cycles,
            "now_ns": vm.clock.now_ns,
            "table": _table_checksum(profiler.old_table),
            "recorded": profiler.survivals_recorded,
            "discarded": profiler.survivals_discarded,
        }

    return run


_KERNEL_FNS = {
    "alloc": _kernel_alloc,
    "call": _kernel_call,
    "survivor": _kernel_survivor,
    "header": _kernel_header,
    "gc_copy": _kernel_gc_copy,
}


def run_kernel(
    kernel: str, seed: int, ops: int, backend_name: str = "fast", repeat: int = 1
) -> Dict[str, object]:
    """Run one kernel under one backend; the building block the cell
    kind and the differential tests share.

    The process-global backend switch is flipped for the duration so
    every component constructed inside captures the requested backend,
    then restored.  Fixture setup runs inside the switch window
    (components snapshot the backend at construction) but outside the
    timed region; with ``repeat > 1`` the fixture is rebuilt per run so
    runs are independent and fingerprints must agree.
    """
    repeat = max(1, int(repeat))
    previous = set_backend(backend_name)
    fingerprint: Optional[Dict[str, object]] = None
    ops_done = 0
    ns_per_op_runs: List[float] = []
    try:
        for index in range(repeat):
            run = _KERNEL_FNS[kernel](seed, ops)
            started = time.perf_counter()
            ops_done, run_fingerprint = run()
            elapsed = max(time.perf_counter() - started, 1e-9)
            ns_per_op_runs.append(elapsed * 1e9 / ops_done)
            if fingerprint is None:
                fingerprint = run_fingerprint
            elif run_fingerprint != fingerprint:
                raise AssertionError(
                    "kernel %r run %d diverged from run 0 under backend %s"
                    % (kernel, index, backend_name)
                )
    finally:
        set_backend(previous)
    ns_per_op = statistics.median(ns_per_op_runs)
    mean = statistics.fmean(ns_per_op_runs)
    cv = statistics.pstdev(ns_per_op_runs) / mean if repeat > 1 and mean else 0.0
    return {
        "kernel": kernel,
        "backend": backend_name,
        "ops": ops_done,
        "repeat": repeat,
        "elapsed_s": ns_per_op * ops_done / 1e9,
        "ops_per_s": 1e9 / ns_per_op,
        "ns_per_op": ns_per_op,
        "ns_per_op_runs": ns_per_op_runs,
        "cv": cv,
        "fingerprint": fingerprint,
    }


@cell_kind(
    "perf_kernel",
    track=lambda p: "perf/%s/%s" % (p["kernel"], p["backend"]),
    seed_scope=shared_seed_scope("perf_kernel", "backend", "repeat"),
)
def _perf_cell(seed, telemetry, kernel, ops, backend, repeat=1):
    return run_kernel(kernel, seed, ops, backend, repeat)


# ------------------------------------------------------------------- experiment

def perf(
    kernels: Optional[Sequence[str]] = None,
    session=None,
    runner: Optional[Runner] = None,
    repeat: int = 1,
) -> Dict[str, object]:
    """Run every kernel through all three backends; return the BENCH_6
    payload.

    ``runner`` supplies seed/progress settings, but the timing cells
    always execute uncached (see the module docstring) and sequentially:
    concurrent workers contend for cores, and a contended wall-clock
    measurement would report speedups that are scheduler noise.
    """
    names = list(kernels or PERF_KERNELS)
    unknown = [name for name in names if name not in _KERNEL_FNS]
    if unknown:
        raise KeyError(
            "unknown perf kernel(s) %s (choose from: %s)"
            % (", ".join(sorted(unknown)), ", ".join(PERF_KERNELS))
        )
    timing_runner = Runner(
        jobs=1,
        cache=None,
        base_seed=runner.base_seed if runner is not None else DEFAULT_BASE_SEED,
        session=session if session is not None else getattr(runner, "session", None),
        progress=runner.progress if runner is not None else False,
    )
    cells = [
        make_cell(
            "perf_kernel",
            kernel=name,
            ops=kernel_ops(name),
            backend=backend_name,
            repeat=max(1, int(repeat)),
        )
        for name in names
        for backend_name in BACKENDS
    ]
    results = timing_runner.run(cells)
    width = len(BACKENDS)
    kernels_payload: Dict[str, object] = {}
    for index, name in enumerate(names):
        by_backend = dict(zip(BACKENDS, results[width * index : width * (index + 1)]))
        reference = by_backend["reference"]
        kernels_payload[name] = {
            "reference": _timing(reference),
            "fast": _timing(by_backend["fast"]),
            "compiled": _timing(by_backend["compiled"]),
            "speedup": {
                "fast": by_backend["fast"]["ops_per_s"] / reference["ops_per_s"],
                "compiled": by_backend["compiled"]["ops_per_s"]
                / reference["ops_per_s"],
            },
            "fingerprint_match": all(
                by_backend[b]["fingerprint"] == reference["fingerprint"]
                for b in BACKENDS
            ),
            "fingerprint": reference["fingerprint"],
        }
    return {
        "schema": "rolp-bench/v1",
        "experiment": "perf",
        "scale": bench_scale(),
        "repeat": max(1, int(repeat)),
        "rss_max_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "kernels": kernels_payload,
    }


def _timing(result: Dict[str, object]) -> Dict[str, object]:
    return {
        "ops": result["ops"],
        "repeat": result["repeat"],
        "elapsed_s": result["elapsed_s"],
        "ops_per_s": result["ops_per_s"],
        "ns_per_op": result["ns_per_op"],
        "ns_per_op_runs": result["ns_per_op_runs"],
        "cv": result["cv"],
    }


def render_perf(payload: Dict[str, object]) -> str:
    rows = []
    for name in payload["kernels"]:
        entry = payload["kernels"][name]
        rows.append(
            [
                name,
                entry["reference"]["ops"],
                "%.0f" % entry["reference"]["ns_per_op"],
                "%.0f" % entry["fast"]["ns_per_op"],
                "%.0f" % entry["compiled"]["ns_per_op"],
                "%.2fx" % entry["speedup"]["fast"],
                "%.2fx" % entry["speedup"]["compiled"],
                "yes" if entry["fingerprint_match"] else "NO — DIVERGED",
            ]
        )
    return render_table(
        [
            "kernel",
            "ops",
            "ref ns/op",
            "fast ns/op",
            "compiled ns/op",
            "fast speedup",
            "compiled speedup",
            "equivalent",
        ],
        rows,
    )

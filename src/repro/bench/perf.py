"""Hot-path microbenchmarks (``rolp-bench perf``).

Five named kernels time the simulator's hottest code paths — allocation,
method entry/exit, survivor tracking, header pack/unpack and the full-GC
copy loop — once through the *reference* implementations (fast paths
disabled) and once through the *optimised* ones (fast paths enabled; see
:mod:`repro.fastpath`).  Each kernel is driven by the experiment runner
as a pair of ``perf_kernel`` cells sharing one derived seed (the
``fast`` flag is a treatment parameter), so both modes replay the
identical workload and the kernel doubles as a differential test: every
cell returns a *fingerprint* of the simulation's observable state
(counters, clocks, table checksums), and the two modes must produce
byte-identical fingerprints.

Timing cells are deliberately **never cached**: a wall-clock measurement
replayed from a previous run's cache entry is not a measurement.  The
fast-path flag still participates in the shared result-cache key (see
``ResultCache.key_material``) so the figure/table equivalence suite can
populate both modes side by side.

``perf()`` returns the ``BENCH_5.json`` payload: per kernel, the
reference timing (the pre-optimisation baseline), the fast timing, the
speedup and the fingerprint verdict, plus the process's peak RSS.

Wall-clock use (``time.perf_counter``) is legitimate here: the bench
package is harness scope, outside the determinism lint's simulation-core
packages.
"""

from __future__ import annotations

import random
import resource
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import build_vm
from repro.bench.config import bench_scale, scaled_ops
from repro.bench.runner import (
    DEFAULT_BASE_SEED,
    Runner,
    cell_kind,
    make_cell,
    shared_seed_scope,
)
from repro.core.profiler import RolpConfig, RolpProfiler
from repro.fastpath import fast_paths_enabled, set_fast_paths
from repro.gc.g1 import G1Collector
from repro.heap import header as hdr
from repro.heap.bandwidth import BandwidthModel
from repro.heap.heap import RegionHeap
from repro.heap.object_model import IMMORTAL, SimObject
from repro.metrics.report import render_table
from repro.runtime.method import Method
from repro.runtime.vm import JavaVM, VMFlags

#: the kernel catalogue, in print order (docs/performance.md documents
#: exactly what each one exercises)
PERF_KERNELS = ("alloc", "call", "survivor", "header", "gc_copy")

#: unscaled operation budget per kernel (ROLP_BENCH_SCALE applies)
_BASE_OPS = {
    "alloc": 60_000,
    "call": 60_000,
    "survivor": 120_000,
    "header": 200_000,
    "gc_copy": 30_000,
}

#: default artifact path for the CLI's ``perf`` experiment
BENCH_JSON = "bench_results/BENCH_5.json"


def kernel_ops(kernel: str) -> int:
    """The scaled operation budget for one kernel."""
    return scaled_ops(_BASE_OPS[kernel])


# ----------------------------------------------------------------- fingerprints

def _table_checksum(table) -> int:
    """Order-independent digest of the OLD table's full contents."""
    checksum = 0
    for context in sorted(table.contexts()):
        checksum = (checksum * 1000003 + context) & hdr.MASK_64
        for value in table.curve(context):
            checksum = (checksum * 1000003 + value) & hdr.MASK_64
    return checksum


# ---------------------------------------------------------------------- kernels
#
# Each kernel is ``fn(seed, ops) -> run`` where ``run() -> (ops_done,
# fingerprint)``.  Fixture construction happens in the outer call
# (untimed — building 2048 seeded objects is not the hot path being
# measured); only ``run`` is timed.  The fingerprint must cover every
# observable the optimisations could have perturbed: clock totals
# (float repr — bit equality, not tolerance), RNG-dependent counters,
# table contents, stack states.

KernelRun = Callable[[], Tuple[int, Dict[str, object]]]


def _kernel_alloc(seed: int, ops: int) -> KernelRun:
    """The allocation path: ``ctx.alloc`` → context resolution → sampling
    → collector placement → header install → OLD-table increment."""
    rng = random.Random(seed)
    sizes = [rng.choice((64, 128, 192, 256, 384, 512)) for _ in range(997)]
    lives = [rng.choice((5_000, 50_000, 500_000)) for _ in range(991)]
    vm, profiler = build_vm(
        "rolp",
        heap_mb=64,
        region_kb=256,
        flags=VMFlags(compile_threshold=1),
    )
    thread = vm.spawn_thread("bench")

    def body(ctx, start, count):
        for i in range(count):
            j = start + i
            ctx.alloc(j % 7, sizes[j % 997], lives[j % 991])

    method = Method("allocLoop", "bench.perf.Alloc", body, bytecode_size=120)

    def run() -> Tuple[int, Dict[str, object]]:
        done = 0
        while done < ops:
            count = min(1_000, ops - done)
            vm.run(thread, method, done, count)
            done += count
        return done, {
            "allocations": vm.allocations,
            "bytes": vm.bytes_allocated,
            "gc_cycles": vm.collector.gc_cycles,
            "now_ns": vm.clock.now_ns,
            "tax": repr(vm.profiling_tax_ns),
            "table": _table_checksum(profiler.old_table),
            "survivals": profiler.survivals_recorded,
            "lost": profiler.old_table.lost_increments,
            "stack_state": thread.stack_state,
        }

    return run


def _kernel_call(seed: int, ops: int) -> KernelRun:
    """Method entry/exit: call-site bookkeeping, the stack-state add/sub
    slow path (mode ``slow``), frame push/pop, JIT invocation counting."""
    vm, _ = build_vm(
        "rolp",
        heap_mb=64,
        region_kb=256,
        flags=VMFlags(compile_threshold=10, call_profiling_mode="slow"),
    )
    thread = vm.spawn_thread("bench")

    def leaf_body(ctx):
        return None

    # bytecode_size > inline_max_size keeps every site out of inlining,
    # so each carries a real stack-state increment once jitted
    leaf_a = Method("leafA", "bench.perf.Call", leaf_body, bytecode_size=100)
    leaf_b = Method("leafB", "bench.perf.Call", leaf_body, bytecode_size=100)

    def mid_body(ctx):
        ctx.call(1, leaf_a)
        ctx.call(2, leaf_b)

    mid = Method("mid", "bench.perf.Call", mid_body, bytecode_size=100)

    def root_body(ctx, count):
        for _ in range(count):
            ctx.call(1, mid)
            ctx.call(2, mid)

    root = Method("root", "bench.perf.Call", root_body, bytecode_size=100)
    # each root-body iteration performs 6 dynamic calls (2 mid + 4 leaf)
    iterations = max(1, ops // 6)

    def run() -> Tuple[int, Dict[str, object]]:
        done = 0
        while done < iterations:
            count = min(500, iterations - done)
            vm.run(thread, root, count)
            done += count
        return iterations * 6, {
            "invocations": [
                root.invocations,
                mid.invocations,
                leaf_a.invocations,
                leaf_b.invocations,
            ],
            "stack_state": thread.stack_state,
            "now_ns": vm.clock.now_ns,
            "tax": repr(vm.profiling_tax_ns),
            "compiled": len(vm.jit.compiled_methods),
        }

    return run


def _kernel_survivor(seed: int, ops: int) -> KernelRun:
    """Survivor tracking: the per-GC-worker buffering of survival
    records plus the end-of-pause merge into the OLD table (including
    the periodic inference pass)."""
    rng = random.Random(seed)
    profiler = RolpProfiler(RolpConfig(gc_workers=4))
    table = profiler.old_table
    for site_id in range(1, 65):
        table.register_site(site_id)
    objs: List[SimObject] = []
    for _ in range(2_048):
        # site 0 and sites 65..80 are unknown → validity-filter work;
        # a slice of biased-locked headers exercises the discard path
        context = hdr.pack_context(rng.randint(0, 80), rng.randint(0, 0xFFFF))
        obj = SimObject(64, 0, IMMORTAL, context)
        obj.header = hdr.set_age(obj.header, rng.randint(0, 15))
        if rng.random() < 0.05:
            obj.header = hdr.bias_lock(obj.header, 0xDEAD)
        objs.append(obj)
    batches = max(1, ops // len(objs))

    def run() -> Tuple[int, Dict[str, object]]:
        for gc_number in range(1, batches + 1):
            profiler.on_gc_survivors(objs, 4)
            profiler.on_gc_end(gc_number, gc_number * 1_000_000, 1_000_000.0)
        return batches * len(objs), {
            "table": _table_checksum(table),
            "recorded": profiler.survivals_recorded,
            "discarded": profiler.survivals_discarded,
            "advice": len(profiler.advice),
            "inference_passes": profiler.inference.passes_run,
        }

    return run


def _kernel_header(seed: int, ops: int) -> KernelRun:
    """Header bit manipulation: the age increment and fresh-header
    construction the copy and allocation loops lean on.  The fast mode
    times the optimised functions, the reference mode their ``*_reference``
    twins; the accumulator proves they compute the same words."""
    rng = random.Random(seed)
    headers = [rng.getrandbits(64) for _ in range(4_096)]
    contexts = [rng.getrandbits(32) for _ in range(4_096)]
    if fast_paths_enabled():
        increment, fresh = hdr.increment_age, hdr.fresh_header
    else:
        increment, fresh = hdr.increment_age_reference, hdr.fresh_header_reference

    def run() -> Tuple[int, Dict[str, object]]:
        accumulator = 0
        n = len(headers)
        mask = hdr.MASK_64
        for i in range(ops):
            j = i % n
            accumulator = (accumulator + increment(headers[j]) + fresh(contexts[j])) & mask
        return ops, {"checksum": accumulator}

    return run


def _kernel_gc_copy(seed: int, ops: int) -> KernelRun:
    """The young-GC copy loop: survivor profiling, aging, re-placement.
    A tenuring threshold above ``MAX_AGE`` pins every object in survivor
    space, so each forced collection re-copies the full live set."""
    rng = random.Random(seed)
    heap = RegionHeap(64 << 20, 256 << 10)
    collector = G1Collector(
        heap, BandwidthModel(), young_regions=16, tenuring_threshold=20
    )
    profiler = RolpProfiler()
    vm = JavaVM(collector, profiler, VMFlags(compile_threshold=1))
    thread = vm.spawn_thread("bench")
    sizes = [rng.choice((96, 128, 160, 192, 256)) for _ in range(997)]

    def body(ctx, start, count):
        for i in range(count):
            j = start + i
            ctx.alloc(j % 5, sizes[j % 997])  # immortal: survives every GC

    method = Method("fill", "bench.perf.Copy", body, bytecode_size=120)
    live_objects = 16_000
    done = 0
    while done < live_objects:
        count = min(1_000, live_objects - done)
        vm.run(thread, method, done, count)
        done += count

    def run() -> Tuple[int, Dict[str, object]]:
        copies = 0
        while copies < ops:
            collector.collect_young()
            copies = sum(p.survivors for p in collector.pauses)
        return copies, {
            "bytes_copied": collector.bytes_copied_total,
            "breakdown": dict(collector.copy_breakdown),
            "gc_cycles": collector.gc_cycles,
            "now_ns": vm.clock.now_ns,
            "table": _table_checksum(profiler.old_table),
            "recorded": profiler.survivals_recorded,
            "discarded": profiler.survivals_discarded,
        }

    return run


_KERNEL_FNS = {
    "alloc": _kernel_alloc,
    "call": _kernel_call,
    "survivor": _kernel_survivor,
    "header": _kernel_header,
    "gc_copy": _kernel_gc_copy,
}


def run_kernel(kernel: str, seed: int, ops: int, fast: bool) -> Dict[str, object]:
    """Run one kernel in one mode; the building block the cell kind and
    the differential tests share.

    The process-global fast-path switch is flipped for the duration so
    every component constructed inside captures the requested mode, then
    restored.  Fixture setup runs inside the switch window (components
    snapshot the mode at construction) but outside the timed region.
    """
    previous = set_fast_paths(bool(fast))
    try:
        run = _KERNEL_FNS[kernel](seed, ops)
        started = time.perf_counter()
        ops_done, fingerprint = run()
        elapsed = max(time.perf_counter() - started, 1e-9)
    finally:
        set_fast_paths(previous)
    return {
        "kernel": kernel,
        "fast": bool(fast),
        "ops": ops_done,
        "elapsed_s": elapsed,
        "ops_per_s": ops_done / elapsed,
        "ns_per_op": elapsed * 1e9 / ops_done,
        "fingerprint": fingerprint,
    }


@cell_kind(
    "perf_kernel",
    track=lambda p: "perf/%s/%s" % (p["kernel"], "fast" if p["fast"] else "reference"),
    seed_scope=shared_seed_scope("perf_kernel", "fast"),
)
def _perf_cell(seed, telemetry, kernel, ops, fast):
    return run_kernel(kernel, seed, ops, fast)


# ------------------------------------------------------------------- experiment

def perf(
    kernels: Optional[Sequence[str]] = None,
    session=None,
    runner: Optional[Runner] = None,
) -> Dict[str, object]:
    """Run every kernel through both modes; return the BENCH_5 payload.

    ``runner`` supplies seed/progress settings, but the timing cells
    always execute uncached (see the module docstring) and sequentially:
    concurrent workers contend for cores, and a contended wall-clock
    measurement would report speedups that are scheduler noise.
    """
    names = list(kernels or PERF_KERNELS)
    unknown = [name for name in names if name not in _KERNEL_FNS]
    if unknown:
        raise KeyError(
            "unknown perf kernel(s) %s (choose from: %s)"
            % (", ".join(sorted(unknown)), ", ".join(PERF_KERNELS))
        )
    timing_runner = Runner(
        jobs=1,
        cache=None,
        base_seed=runner.base_seed if runner is not None else DEFAULT_BASE_SEED,
        session=session if session is not None else getattr(runner, "session", None),
        progress=runner.progress if runner is not None else False,
    )
    cells = [
        make_cell("perf_kernel", kernel=name, ops=kernel_ops(name), fast=fast)
        for name in names
        for fast in (False, True)
    ]
    results = timing_runner.run(cells)
    kernels_payload: Dict[str, object] = {}
    for index, name in enumerate(names):
        reference, fast = results[2 * index], results[2 * index + 1]
        kernels_payload[name] = {
            "reference": _timing(reference),
            "fast": _timing(fast),
            "speedup": fast["ops_per_s"] / reference["ops_per_s"],
            "fingerprint_match": reference["fingerprint"] == fast["fingerprint"],
            "fingerprint": reference["fingerprint"],
        }
    return {
        "schema": "rolp-bench/v1",
        "experiment": "perf",
        "scale": bench_scale(),
        "rss_max_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "kernels": kernels_payload,
    }


def _timing(result: Dict[str, object]) -> Dict[str, object]:
    return {
        "ops": result["ops"],
        "elapsed_s": result["elapsed_s"],
        "ops_per_s": result["ops_per_s"],
        "ns_per_op": result["ns_per_op"],
    }


def render_perf(payload: Dict[str, object]) -> str:
    rows = []
    for name in payload["kernels"]:
        entry = payload["kernels"][name]
        rows.append(
            [
                name,
                entry["reference"]["ops"],
                "%.0f" % entry["reference"]["ns_per_op"],
                "%.0f" % entry["fast"]["ns_per_op"],
                "%.2fx" % entry["speedup"],
                "yes" if entry["fingerprint_match"] else "NO — DIVERGED",
            ]
        )
    return render_table(
        ["kernel", "ops", "ref ns/op", "fast ns/op", "speedup", "equivalent"],
        rows,
    )

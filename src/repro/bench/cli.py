"""Command-line entry point: regenerate any table or figure.

Usage::

    rolp-bench table1
    rolp-bench fig8 --workloads cassandra-wi lucene
    ROLP_BENCH_SCALE=0.2 rolp-bench all

Parallelism and caching (see docs/benchmarking.md)::

    rolp-bench fig8 --jobs 4              # fan the grid out over 4 workers
    rolp-bench all --cache-dir cache/     # cache each cell's result
    rolp-bench all --resume               # continue an interrupted grid
    rolp-bench fig8 --no-cache            # force every simulation to run

Every experiment expands into independent (workload x collector x
config) *cells* with deterministic per-cell seeds, so ``--jobs N``
output is byte-identical to the serial run, interrupted grids resume
from the cells already cached, and a warm-cache re-run performs zero
simulations.

Telemetry and machine-readable artifacts::

    rolp-bench fig8 --trace-out trace.json --metrics-out metrics.json
    rolp-bench trace --workloads cassandra-wi --collectors g1 rolp
    rolp-bench all --json-dir out/

``--trace-out`` captures every run as a Chrome ``trace_event`` file
(load it in chrome://tracing or https://ui.perfetto.dev); ``--metrics-out``
writes one JSON document with the experiment payloads plus the full
metrics-registry dump; ``--json-dir`` writes one JSON file per
experiment.  Per-run trace tracks are recorded on the serial path only
(``--jobs 1``); cached cells record no new events.

Invariant verification (see docs/verification.md)::

    rolp-bench fig6 --verify              # full checking (level 2)
    rolp-bench table1 --verify 1          # heap walks only

``--verify`` runs the sanitizer suite inside every simulation; a
violation aborts with exit status 3 and a structured error naming the
broken rule and the offending region/object/thread.  Verified and
unverified runs never share cache entries.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro import COLLECTOR_NAMES
from repro.analysis import InvariantViolation, set_default_verify_level
from repro.analysis import pause_attribution
from repro.bench import ablations, artifacts, figures, fuzz, perf, tables
from repro.bench.config import bench_scale
from repro.bench.runner import (
    DEFAULT_BASE_SEED,
    ResultCache,
    Runner,
    cell_kind,
    make_cell,
    run_cells,
    shared_seed_scope,
)
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    all_workload_names,
    big_workload_ops,
    run_big_workload,
)
from repro.metrics.report import render_table
from repro.telemetry import FlightRecorder, TelemetrySession, resolve_capacity
from repro.workloads.dacapo import SPEC_BY_NAME

#: default on-disk cell cache (override with --cache-dir or the
#: ROLP_BENCH_CACHE_DIR environment variable; disable with --no-cache)
DEFAULT_CACHE_DIR = ".rolp-bench-cache"

#: the six ablation studies, in print order
ABLATIONS = (
    (
        "survivor_tracking",
        ablations.ablation_survivor_tracking,
        "[Ablation] survivor-tracking shutdown (Section 7.4)",
    ),
    (
        "package_filters",
        ablations.ablation_package_filters,
        "[Ablation] package filters (Section 7.3)",
    ),
    (
        "generations",
        ablations.ablation_generations,
        "[Ablation] 16 generations vs binary pretenuring (Section 9)",
    ),
    (
        "increment_loss",
        ablations.ablation_increment_loss,
        "[Ablation] unsynchronized OLD-table increment loss (Section 7.6)",
    ),
    (
        "allocation_sampling",
        ablations.ablation_allocation_sampling,
        "[Ablation] allocation sampling (Section 8.5 extension)",
    ),
    (
        "offline_profile",
        ablations.ablation_offline_profile,
        "[Ablation] offline (POLM2-style) vs online profiling (Section 10)",
    ),
)


class UnknownNamesError(Exception):
    """A ``--workloads``/``--benchmarks``/``--collectors`` name that the
    registry does not know."""

    def __init__(self, kind: str, unknown: List[str], valid: List[str]) -> None:
        self.kind = kind
        self.unknown = unknown
        self.valid = valid
        super().__init__(
            "unknown %s %s (choose from: %s)"
            % (kind, ", ".join(sorted(unknown)), ", ".join(valid))
        )


def _validate(kind: str, names: Optional[List[str]], valid: List[str]) -> None:
    if not names:
        return
    unknown = [n for n in names if n not in valid]
    if unknown:
        raise UnknownNamesError(kind, unknown, valid)


def _specs(names: Optional[List[str]]):
    if not names:
        return None
    _validate("benchmark", names, sorted(SPEC_BY_NAME))
    return [SPEC_BY_NAME[n] for n in names]


def _check_workloads(names: Optional[List[str]]) -> Optional[List[str]]:
    _validate("workload", names, all_workload_names())
    return names


def _check_collectors(names: Optional[List[str]]) -> Optional[List[str]]:
    _validate("collector", names, list(COLLECTOR_NAMES))
    return names


@cell_kind(
    "trace_run",
    track=lambda p: "%s/%s" % (p["workload"], p["collector"]),
    seed_scope=shared_seed_scope("trace_run", "collector"),
)
def _trace_cell(seed, telemetry, workload, collector, operations):
    result, _ = run_big_workload(
        workload, collector, operations=operations, seed=seed, telemetry=telemetry
    )
    return {
        "workload": workload,
        "collector": collector,
        "operations": result.operations,
        "elapsed_ms": result.elapsed_ms,
        "throughput_ops_s": result.throughput_ops_s,
        "pause_count": len(result.pauses),
        "total_pause_ms": sum(result.pause_ms),
        "gc_cycles": result.gc_cycles,
        "max_memory_bytes": result.max_memory_bytes,
    }


def _trace_experiment(
    workload_names: Optional[List[str]],
    collectors: Optional[List[str]],
    session: Optional[TelemetrySession],
    runner: Optional[Runner] = None,
) -> List[Dict[str, object]]:
    """The ``trace`` experiment: run every workload under every
    collector with telemetry attached, returning one summary row per
    run."""
    cells = [
        make_cell(
            "trace_run",
            workload=name,
            collector=collector,
            operations=big_workload_ops(name),
        )
        for name in workload_names or sorted(BIG_WORKLOADS)
        for collector in collectors or COLLECTOR_NAMES
    ]
    return run_cells(cells, runner, session)


def render_trace_summary(rows: List[Dict[str, object]]) -> str:
    return render_table(
        ["workload", "collector", "ops", "pauses", "pause ms", "cycles", "max MB"],
        [
            [
                row["workload"],
                row["collector"],
                row["operations"],
                row["pause_count"],
                "%.1f" % row["total_pause_ms"],
                row["gc_cycles"],
                "%.1f" % (row["max_memory_bytes"] / (1 << 20)),
            ]
            for row in rows
        ],
    )


def _run_experiments(
    todo: List[str],
    runner: Runner,
    session: Optional[TelemetrySession],
    payloads: Dict[str, object],
    workloads: Optional[List[str]],
    collectors: Optional[List[str]],
    specs,
    explain_capacity: Optional[int] = None,
    perf_repeat: int = 1,
    fuzz_budget: str = "32",
    corpus_dir: str = fuzz.DEFAULT_CORPUS_DIR,
) -> None:
    """Run each experiment in ``todo``, printing its rendering and
    filling ``payloads`` (split out of :func:`main` so the verification
    scope wraps exactly the simulations)."""
    pause_studies = None  # memoized: fig8 and fig9 share the same runs
    for experiment in todo:
        print("=" * 72)
        if experiment == "table1":
            rows = tables.table1(workloads, session=session, runner=runner)
            payloads["table1"] = artifacts.table1_payload(rows)
            print("[Table 1] Big Data benchmark profiling summary")
            print(tables.render_table1(rows))
        elif experiment == "table2":
            rows = tables.table2(specs, session=session, runner=runner)
            payloads["table2"] = artifacts.table2_payload(rows)
            print("[Table 2] DaCapo profiling and conflicts")
            print(tables.render_table2(rows))
        elif experiment == "fig6":
            series = figures.figure6(specs, session=session, runner=runner)
            payloads["fig6"] = artifacts.figure6_payload(series)
            print("[Figure 6] DaCapo execution time normalized to G1")
            print(figures.render_figure6(series))
        elif experiment == "fig7":
            series = figures.figure7(specs, session=session, runner=runner)
            payloads["fig7"] = artifacts.figure7_payload(series)
            print("[Figure 7] Worst-case conflict resolution time (ms)")
            print(figures.render_figure7(series))
        elif experiment in ("fig8", "fig9"):
            if pause_studies is None:
                pause_studies = figures.pause_study(
                    workloads, session=session, runner=runner
                )
            payloads[experiment] = artifacts.pause_study_payload(pause_studies)
            if experiment == "fig8":
                print(figures.render_figure8(pause_studies))
            else:
                print(figures.render_figure9(pause_studies))
        elif experiment == "fig10":
            study = figures.figure10(session=session, runner=runner)
            payloads["fig10"] = artifacts.figure10_payload(study)
            print(figures.render_figure10(study))
        elif experiment == "ablations":
            ablation_payloads: Dict[str, object] = {}
            for key, run, title in ABLATIONS:
                results = run(runner=runner)
                ablation_payloads[key] = artifacts.ablation_payload(results)
                print(ablations.render_ablation(results, title))
            payloads["ablations"] = ablation_payloads
        elif experiment == "trace":
            rows = _trace_experiment(workloads, collectors, session, runner=runner)
            payloads["trace"] = artifacts.trace_payload(rows)
            print("[Trace] per-run summary (full trace via --trace-out)")
            print(render_trace_summary(rows))
        elif experiment == "explain":
            report = pause_attribution.explain(
                workloads,
                collectors,
                capacity=explain_capacity,
                runner=runner,
                session=session,
            )
            payloads["explain"] = report
            print("[Explain] per-pause root-cause attribution (tail vs overall)")
            print(pause_attribution.render_report(report))
        elif experiment == "perf":
            study = perf.perf(session=session, runner=runner, repeat=perf_repeat)
            payloads["perf"] = study
            print("[Perf] hot-path microbenchmarks across execution backends")
            print(perf.render_perf(study))
            os.makedirs(os.path.dirname(perf.BENCH_JSON), exist_ok=True)
            artifacts.write_json(perf.BENCH_JSON, study)
            print("perf results written to %s" % perf.BENCH_JSON)
        elif experiment == "fuzz":
            report = fuzz.fuzz(
                runner,
                budget=fuzz_budget,
                corpus_dir=corpus_dir,
                progress=lambda msg: print("[fuzz] %s" % msg, file=sys.stderr),
            )
            payloads["fuzz"] = report
            print("[Fuzz] adversarial demography search (oracle: sanitizers + diff)")
            print(fuzz.render_fuzz_report(report))
        elif experiment == "staticcheck":
            from repro.analysis import staticcheck

            report = staticcheck.run_staticcheck(workloads, corpus_dir=corpus_dir)
            payloads["staticcheck"] = report
            print(
                "[StaticCheck] program verifier + ahead-of-time "
                "context-conflict analyzer"
            )
            print(staticcheck.render_report(report))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rolp-bench",
        description="Regenerate the ROLP paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablations",
            "trace",
            "explain",
            "perf",
            "fuzz",
            "staticcheck",
            "serve",
            "all",
        ],
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve only: bind address (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8413,
        metavar="N",
        help="serve only: TCP port, 0 picks an ephemeral one (default: %(default)s)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="serve only: admission-queue capacity; a full queue answers "
        "429 + Retry-After (default: %(default)s)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="serve only: jobs coalesced per runner batch (default: %(default)s)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="serve only: per-request deadline in seconds; expiry answers "
        "504 without cancelling the admitted job (default: %(default)s)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="serve only: sessions idle past this are reaped (default: %(default)s)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        help="restrict large-scale experiments to these workloads",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        help="restrict DaCapo experiments to these benchmarks",
    )
    parser.add_argument(
        "--collectors",
        nargs="*",
        help="restrict the trace experiment to these collectors",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan simulation cells out across N worker processes "
        "(results are byte-identical to --jobs 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("ROLP_BENCH_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="directory for the per-cell result cache (default: "
        "$ROLP_BENCH_CACHE_DIR or %s)" % DEFAULT_CACHE_DIR,
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted grid: like the default cached run, "
        "but fails fast if the cache directory does not exist yet",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_BASE_SEED,
        metavar="N",
        help="base seed; every cell derives its own seed from "
        "(cell key, base seed) (default: %d)" % DEFAULT_BASE_SEED,
    )
    parser.add_argument(
        "--verify",
        nargs="?",
        const=2,
        default=0,
        type=int,
        choices=(0, 1, 2),
        help="run invariant verification inside every simulation: 1 walks "
        "the heap at GC boundaries, 2 adds the biased-lock discipline "
        "checker (bare --verify means 2); a violation exits with status 3",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="perf experiment only: re-time each (kernel, backend) cell "
        "N times (fresh fixture per run) and report the median ns/op "
        "plus the coefficient of variation (default: 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace_event JSON covering every run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write experiment payloads + metrics registry as one JSON document",
    )
    parser.add_argument(
        "--json-dir",
        metavar="DIR",
        help="write one machine-readable JSON file per experiment",
    )
    parser.add_argument(
        "--flight-recorder",
        nargs="?",
        const=-1,
        default=None,
        type=int,
        metavar="N",
        help="enable the bounded always-on flight recorder (optionally "
        "with an event capacity; bare flag = default capacity; also "
        "switchable via ROLP_FLIGHT_RECORDER)",
    )
    parser.add_argument(
        "--flight-out",
        metavar="PATH",
        help="dump the flight recording (JSONL) here at exit — and, on "
        "an invariant violation, before aborting",
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        default="pause_report.json",
        help="where the explain experiment writes its pause report, "
        "the fuzz experiment writes its search report, and the "
        "staticcheck experiment writes its analysis report "
        "(default: %(default)s; staticcheck defaults to "
        "staticcheck_report.json)",
    )
    parser.add_argument(
        "--budget",
        metavar="N|Ns",
        default="32",
        help="fuzz experiment only: search budget, either an evaluation "
        "count (e.g. 64 — deterministic, byte-identical across --jobs) "
        "or a time box (e.g. 120s) (default: %(default)s)",
    )
    parser.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=fuzz.DEFAULT_CORPUS_DIR,
        help="fuzz experiment only: where shrunk findings are banked as "
        "replayable regression-corpus entries (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        metavar="N",
        help="cap the --trace-out event buffer at N events (excess is "
        "counted as dropped, not buffered)",
    )
    args = parser.parse_args(argv)

    # Fail fast on unwritable output paths — before hours of runs.
    for path in (args.trace_out, args.metrics_out, args.flight_out):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                print(
                    "rolp-bench: cannot write %s (no such directory: %s)"
                    % (path, parent),
                    file=sys.stderr,
                )
                return 2

    if args.resume and args.no_cache:
        print("rolp-bench: --resume conflicts with --no-cache", file=sys.stderr)
        return 2
    if args.resume and not os.path.isdir(args.cache_dir):
        print(
            "rolp-bench: --resume but no cache directory at %s" % args.cache_dir,
            file=sys.stderr,
        )
        return 2

    if args.experiment == "serve":
        # simulation-as-a-service: sessions over HTTP/JSON, jobs
        # coalesced into runner cells, results byte-identical to this
        # CLI (docs/server.md)
        from repro.server import ServerApp, serve_main

        serve_runner = Runner(
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache(args.cache_dir),
            base_seed=args.seed,
        )
        app = ServerApp(
            runner=serve_runner,
            queue_limit=args.queue_limit,
            max_batch=args.max_batch,
            request_timeout_s=args.request_timeout or None,
            idle_timeout_s=args.idle_timeout,
        )
        return serve_main(
            args.host,
            args.port,
            app,
            reap_interval_s=max(1.0, args.idle_timeout / 4),
        )

    todo = (
        ["table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "ablations"]
        if args.experiment == "all"
        else [args.experiment]
    )

    recorder_capacity = resolve_capacity(args.flight_recorder)
    recorder = (
        FlightRecorder(recorder_capacity) if recorder_capacity is not None else None
    )

    session: Optional[TelemetrySession] = None
    wants_trace = bool(
        args.trace_out or args.metrics_out or "trace" in todo or "explain" in todo
    )
    if wants_trace or recorder is not None:
        # With only the recorder on, the unbounded sink never collects:
        # bounded always-on recording stays bounded.
        session = TelemetrySession(
            flight_recorder=recorder,
            max_trace_events=args.trace_max_events,
            record_trace=wants_trace,
        )

    runner = Runner(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        base_seed=args.seed,
        session=session,
        progress=True,
    )

    payloads: Dict[str, object] = {}

    try:
        specs = _specs(args.benchmarks)
        workloads = _check_workloads(args.workloads)
        collectors = _check_collectors(args.collectors)
    except UnknownNamesError as exc:
        print("rolp-bench: %s" % exc, file=sys.stderr)
        return 2

    # Ambient rather than per-cell so cell keys and derived seeds stay
    # identical to unverified runs (results remain comparable with the
    # goldens); the cache still separates on it via key_material.
    previous_verify = set_default_verify_level(args.verify)
    try:
        _run_experiments(
            todo,
            runner,
            session,
            payloads,
            workloads,
            collectors,
            specs,
            explain_capacity=recorder_capacity,
            perf_repeat=max(1, args.repeat),
            fuzz_budget=args.budget,
            corpus_dir=args.corpus_dir,
        )
    except InvariantViolation as exc:
        print("rolp-bench: invariant violation: %s" % exc, file=sys.stderr)
        if recorder is not None:
            # Dump-on-violation: the recording leading up to the trip is
            # exactly what a bounded flight recorder exists to preserve.
            dump_path = args.flight_out or "rolp-violation.jfr.jsonl"
            recorder.dump(dump_path)
            print(
                "rolp-bench: flight recording dumped to %s" % dump_path,
                file=sys.stderr,
            )
        return 3
    finally:
        set_default_verify_level(previous_verify)

    if args.verify:
        print(
            "[verify] level %d: all invariant checks passed (0 violations)"
            % args.verify,
            file=sys.stderr,
        )

    stats = runner.stats
    print(
        "[runner] cells: %d | cache hits: %d | misses: %d | "
        "simulations executed: %d | jobs: %d | %.1fs"
        % (
            stats.cells,
            stats.cache_hits,
            stats.cache_misses,
            stats.simulations,
            runner.jobs,
            stats.elapsed_s,
        ),
        file=sys.stderr,
    )

    if args.trace_out and session is not None:
        session.write_trace(args.trace_out)
        print("trace written to %s" % args.trace_out)
    if args.flight_out and recorder is not None:
        recorder.dump(args.flight_out)
        print("flight recording written to %s" % args.flight_out)
    if "explain" in payloads:
        artifacts.write_json(args.report_out, payloads["explain"])
        print("pause report written to %s" % args.report_out)
    if "fuzz" in payloads:
        artifacts.write_json(args.report_out, payloads["fuzz"])
        print("fuzz report written to %s" % args.report_out)
        failure_rules = fuzz.report_failure_rules(payloads["fuzz"])
        if failure_rules:
            print(
                "rolp-bench: fuzz findings require attention: %s"
                % ", ".join(failure_rules),
                file=sys.stderr,
            )
            return 3
    if "staticcheck" in payloads:
        from repro.analysis.staticcheck import report_violation_rules

        static_out = (
            args.report_out
            if args.report_out != "pause_report.json"
            else "staticcheck_report.json"
        )
        artifacts.write_json(static_out, payloads["staticcheck"])
        print("staticcheck report written to %s" % static_out)
        violation_rules = report_violation_rules(payloads["staticcheck"])
        if violation_rules:
            print(
                "rolp-bench: staticcheck verifier violations: %s"
                % ", ".join(violation_rules),
                file=sys.stderr,
            )
            return 3
    if args.metrics_out:
        artifacts.write_json(
            args.metrics_out,
            {
                "schema": artifacts.SCHEMA,
                "scale": bench_scale(),
                "experiments": payloads,
                "runner": stats.as_dict(),
                "trace_ids": runner.trace_ids,
                "telemetry": (
                    session.telemetry_counters() if session is not None else None
                ),
                "metrics": session.metrics.to_json() if session is not None else {},
            },
        )
        print("metrics written to %s" % args.metrics_out)
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
        for experiment, payload in payloads.items():
            path = os.path.join(args.json_dir, "%s.json" % experiment)
            artifacts.write_json(
                path,
                {
                    "schema": artifacts.SCHEMA,
                    "scale": bench_scale(),
                    "trace_ids": runner.trace_ids,
                    experiment: payload,
                },
            )
        print("per-experiment JSON written to %s" % args.json_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate any table or figure.

Usage::

    rolp-bench table1
    rolp-bench fig8 --workloads cassandra-wi lucene
    ROLP_BENCH_SCALE=0.2 rolp-bench all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import ablations, figures, tables
from repro.workloads.dacapo import SPEC_BY_NAME


def _specs(names: Optional[List[str]]):
    if not names:
        return None
    return [SPEC_BY_NAME[n] for n in names]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rolp-bench",
        description="Regenerate the ROLP paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablations",
            "all",
        ],
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        help="restrict large-scale experiments to these workloads",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        help="restrict DaCapo experiments to these benchmarks",
    )
    args = parser.parse_args(argv)

    todo = (
        ["table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "ablations"]
        if args.experiment == "all"
        else [args.experiment]
    )

    for experiment in todo:
        print("=" * 72)
        if experiment == "table1":
            print("[Table 1] Big Data benchmark profiling summary")
            print(tables.render_table1(tables.table1(args.workloads)))
        elif experiment == "table2":
            print("[Table 2] DaCapo profiling and conflicts")
            print(tables.render_table2(tables.table2(_specs(args.benchmarks))))
        elif experiment == "fig6":
            print("[Figure 6] DaCapo execution time normalized to G1")
            print(figures.render_figure6(figures.figure6(_specs(args.benchmarks))))
        elif experiment == "fig7":
            print("[Figure 7] Worst-case conflict resolution time (ms)")
            print(figures.render_figure7(figures.figure7(_specs(args.benchmarks))))
        elif experiment in ("fig8", "fig9"):
            studies = figures.pause_study(args.workloads)
            if experiment == "fig8":
                print(figures.render_figure8(studies))
            else:
                print(figures.render_figure9(studies))
        elif experiment == "fig10":
            print(figures.render_figure10(figures.figure10()))
        elif experiment == "ablations":
            print(
                ablations.render_ablation(
                    ablations.ablation_survivor_tracking(),
                    "[Ablation] survivor-tracking shutdown (Section 7.4)",
                )
            )
            print(
                ablations.render_ablation(
                    ablations.ablation_package_filters(),
                    "[Ablation] package filters (Section 7.3)",
                )
            )
            print(
                ablations.render_ablation(
                    ablations.ablation_generations(),
                    "[Ablation] 16 generations vs binary pretenuring (Section 9)",
                )
            )
            print(
                ablations.render_ablation(
                    ablations.ablation_increment_loss(),
                    "[Ablation] unsynchronized OLD-table increment loss (Section 7.6)",
                )
            )
            print(
                ablations.render_ablation(
                    ablations.ablation_allocation_sampling(),
                    "[Ablation] allocation sampling (Section 8.5 extension)",
                )
            )
            print(
                ablations.render_ablation(
                    ablations.ablation_offline_profile(),
                    "[Ablation] offline (POLM2-style) vs online profiling (Section 10)",
                )
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Adversarial workload fuzzer (``rolp-bench fuzz``).

A seeded evolutionary search over :class:`DemographyGenome` space
(:mod:`repro.workloads.adversarial`), with the whole PR 3-7 sanitizer
and differential investment wired in as the oracle:

* every candidate genome is simulated once per execution backend
  (``reference``/``fast``/``compiled``) with **level-2 invariant
  verification live**,
* the per-backend outcomes go through
  :func:`repro.analysis.fuzz_oracle.judge` — invariant violations,
  cross-backend fingerprint divergence and inference-accuracy cliffs
  all count as findings,
* any finding is **shrunk** (greedy first-improvement descent over
  :meth:`DemographyGenome.shrink_candidates`, which strictly reduces
  genome complexity, so descent terminates) and **banked** into the
  replayable regression corpus ``tests/corpus/*.json``,
* independently of findings, the search tracks the best genome per
  *objective* — maximize context-collision rate, survivor-prediction
  drift, tail pauses — and banks the conflict-objective winner when it
  beats the kvstore baseline by :data:`CONFLICT_RATIO_REQUIRED` x.

Determinism contract: with an integer ``--budget N`` (N candidate
evaluations) the entire search — candidate stream, scores, shrinks,
report JSON, corpus filenames — is a pure function of ``--seed``;
evaluation cells flow through the experiment :class:`Runner`, which
merges pool results in submission order, so ``--jobs 1`` and
``--jobs 4`` are byte-identical.  A ``--budget 120s`` time-box (the
nightly mode) trades that determinism for wall-clock bounding.

Evaluation compresses the inference window
(``inference_period_gcs=8`` instead of the paper's 16) so hostile
pressure produces multiple inference passes within bench-scale budgets;
the baseline is measured under the identical configuration, so
objective ratios compare like with like.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import (
    InvariantViolation,
    default_verify_level,
    set_default_verify_level,
)
from repro.analysis.fuzz_oracle import judge
from repro.bench.config import scaled_ops
from repro.bench.runner import (
    Cell,
    Runner,
    cell_kind,
    derive_seed,
    make_cell,
    shared_seed_scope,
)
from repro.bench.workload_registry import make_big_workload
from repro.core import RolpConfig
from repro.fastpath import BACKENDS, set_backend
from repro.workloads.adversarial import (
    HOSTILE_DEFAULT,
    AdversarialWorkload,
    DemographyGenome,
    random_genome,
)
from repro.workloads.base import run_workload

#: GC cycles between inference passes during fuzz evaluation (the
#: paper's 16 needs more GC activity than a bench-scale run produces)
FUZZ_INFERENCE_PERIOD = 8

#: verification level every candidate runs under
FUZZ_VERIFY_LEVEL = 2

#: unscaled operation budget per candidate evaluation
FUZZ_EVAL_BASE_OPS = 6_000

#: fixed (never scaled) operation count corpus entries are banked and
#: replayed at — corpus semantics must not depend on ROLP_BENCH_SCALE
CORPUS_OPS = 3_000

#: the friendly-demography baseline the conflict objective is measured
#: against (the paper's Cassandra write-intensive mix)
BASELINE_WORKLOAD = "cassandra-wi"

#: required conflict-rate ratio over the baseline for the
#: max-conflicts objective to be bank-worthy (acceptance criterion)
CONFLICT_RATIO_REQUIRED = 10.0

#: baselines below this floor count as the floor (a zero-conflict
#: baseline must not make every ratio infinite)
BASELINE_RATE_FLOOR = 0.25

#: corpus JSON schema identifier
CORPUS_SCHEMA = "rolp-bench/fuzz-corpus/v1"

#: default corpus directory, relative to the repo root
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")

#: search objectives and the reference-backend metric each maximizes
OBJECTIVE_METRICS = {
    "conflicts": "conflict_rate",
    "drift": "prediction_error",
    "tail": "tail_pause_ms",
}


# ---------------------------------------------------------------------- evaluation

def _fuzz_rolp_config(workload) -> RolpConfig:
    return RolpConfig(
        package_filter=workload.package_filter(),
        inference_period_gcs=FUZZ_INFERENCE_PERIOD,
    )


def _fingerprint(result, workload) -> Dict[str, object]:
    """JSON-stable digest of everything the backends could perturb.

    Floats go through ``repr`` — the differential oracle demands bit
    equality, not tolerance (the :mod:`repro.bench.perf` convention).
    """
    profiler_summary = result.profiler_summary or {}
    pause_ms = result.pause_ms
    return {
        "workload": result.workload,
        "operations": result.operations,
        "gc_cycles": result.gc_cycles,
        "elapsed_ms": repr(result.elapsed_ms),
        "max_memory_bytes": result.max_memory_bytes,
        "pause_count": len(pause_ms),
        "pause_total_ms": repr(sum(pause_ms)),
        "pause_max_ms": repr(max(pause_ms) if pause_ms else 0.0),
        "vm": {key: repr(value) for key, value in sorted(result.vm_summary.items())},
        "profiler": {
            key: repr(value) for key, value in sorted(profiler_summary.items())
        },
    }


def _evaluate(workload, ops: int, backend_name: str, verify: int) -> Dict[str, object]:
    """Run one already-constructed workload under one backend with the
    sanitizer suite live; never raises on an invariant violation —
    the violation IS the result (pool workers must not die on a find)."""
    previous_backend = set_backend(backend_name)
    previous_verify = default_verify_level()
    set_default_verify_level(verify)
    try:
        try:
            result = run_workload(
                workload,
                "rolp",
                operations=ops,
                rolp_config=_fuzz_rolp_config(workload),
            )
        except InvariantViolation as violation:
            return {
                "violation": {
                    "rule": violation.rule,
                    "message": violation.message,
                    "details": {
                        key: repr(value)
                        for key, value in sorted(violation.details.items())
                    },
                },
                "fingerprint": None,
                "metrics": {},
            }
    finally:
        set_default_verify_level(previous_verify)
        set_backend(previous_backend)
    profiler = workload.vm.profiler
    tail = result.percentiles([99.9])[99.9] if result.pauses else 0.0
    metrics = {
        "conflict_rate": profiler.conflict_rate() if profiler else 0.0,
        "prediction_error": profiler.prediction_error() if profiler else 0.0,
        "inference_passes": profiler.inference.passes_run if profiler else 0,
        "tail_pause_ms": tail,
        "gc_cycles": result.gc_cycles,
        "throughput_ops_s": result.throughput_ops_s,
    }
    return {
        "violation": None,
        "fingerprint": _fingerprint(result, workload),
        "metrics": metrics,
    }


def evaluate_genome(
    genome_json: str,
    seed: int,
    ops: int,
    backend_name: str,
    verify: int = FUZZ_VERIFY_LEVEL,
) -> Dict[str, object]:
    """Evaluate one genome (canonical JSON) under one backend."""
    genome = DemographyGenome.decode(genome_json)
    return _evaluate(AdversarialWorkload(genome, seed=seed), ops, backend_name, verify)


def evaluate_registered(
    workload_name: str,
    seed: int,
    ops: int,
    backend_name: str,
    verify: int = FUZZ_VERIFY_LEVEL,
) -> Dict[str, object]:
    """Evaluate a registry workload (baseline measurement, traced runs)
    under the identical fuzz configuration."""
    return _evaluate(
        make_big_workload(workload_name, seed=seed), ops, backend_name, verify
    )


def fingerprint_workload(
    workload_name: str, seed: int, ops: int, backend_name: str
) -> Dict[str, object]:
    """The run fingerprint of a registered workload under one backend —
    the hostile-demography hook for the perf-equivalence suite.
    Raises if the run trips an invariant (equivalence tests expect
    clean runs)."""
    outcome = evaluate_registered(workload_name, seed, ops, backend_name)
    if outcome["violation"]:
        raise AssertionError(
            "workload %r violated %s under backend %s"
            % (workload_name, outcome["violation"]["rule"], backend_name)
        )
    return outcome["fingerprint"]


@cell_kind(
    "fuzz_eval",
    track=lambda p: "fuzz/%s/%s"
    % (
        p["workload"] or "genome-%s" % _genome_digest(p["genome"])[:8],
        p["backend"],
    ),
    seed_scope=shared_seed_scope("fuzz_eval", "backend"),
)
def _fuzz_eval_cell(seed, telemetry, genome, workload, ops, backend, verify):
    """One candidate evaluation.  Exactly one of ``genome`` (canonical
    JSON) and ``workload`` (registry name) is non-empty.  The backend is
    a treatment parameter (shared seed scope), so all three backends
    replay the identical candidate."""
    if genome:
        return evaluate_genome(genome, seed, ops, backend, verify)
    return evaluate_registered(workload, seed, ops, backend, verify)


def _genome_digest(genome_json: str) -> str:
    return hashlib.sha256(genome_json.encode()).hexdigest()


# ------------------------------------------------------------------- batch helpers

def _genome_cells(genome_json: str, ops: int, backends: Sequence[str]) -> List[Cell]:
    return [
        make_cell(
            "fuzz_eval",
            genome=genome_json,
            workload="",
            ops=ops,
            backend=backend_name,
            verify=FUZZ_VERIFY_LEVEL,
        )
        for backend_name in backends
    ]


def evaluate_batch(
    runner: Runner,
    genomes: Sequence[DemographyGenome],
    ops: int,
    backends: Sequence[str] = BACKENDS,
) -> List[Dict[str, dict]]:
    """Evaluate each genome under every backend through the runner
    (pool-parallel, cached, submission-order deterministic); returns one
    ``{backend: outcome}`` dict per genome."""
    cells: List[Cell] = []
    for genome in genomes:
        cells.extend(_genome_cells(genome.encode(), ops, backends))
    results = runner.run(cells)
    width = len(backends)
    return [
        dict(zip(backends, results[width * index : width * (index + 1)]))
        for index in range(len(genomes))
    ]


def measure_baseline(runner: Runner, ops: int) -> float:
    """The kvstore conflict-rate baseline at the given op count, floored
    so ratios stay finite."""
    cell = make_cell(
        "fuzz_eval",
        genome="",
        workload=BASELINE_WORKLOAD,
        ops=ops,
        backend="reference",
        verify=FUZZ_VERIFY_LEVEL,
    )
    outcome = runner.run([cell])[0]
    rate = outcome["metrics"].get("conflict_rate", 0.0)
    return max(BASELINE_RATE_FLOOR, rate)


# ---------------------------------------------------------------------- shrinking

def shrink_genome(genome: DemographyGenome, holds) -> DemographyGenome:
    """Greedy first-improvement minimization: repeatedly move to the
    first shrink candidate on which ``holds(candidate)`` is still true.
    Terminates because every candidate strictly reduces
    :meth:`DemographyGenome.complexity`."""
    current = genome
    improved = True
    while improved:
        improved = False
        for candidate in current.shrink_candidates():
            if holds(candidate):
                current = candidate
                improved = True
                break
    return current


def _finding_holds(runner: Runner, rule_id: str, ops: int):
    """Predicate: the full three-backend oracle still reports
    ``rule_id`` for the candidate."""

    def holds(candidate: DemographyGenome) -> bool:
        by_backend = evaluate_batch(runner, [candidate], ops)[0]
        return any(finding.rule_id == rule_id for finding in judge(by_backend))

    return holds


def _conflict_holds(
    runner: Runner,
    threshold: float,
    ops: int,
    stats: Optional[Dict[str, int]] = None,
):
    """Predicate: the candidate still clears the conflict-rate
    threshold on the reference backend (cheap single-cell eval).

    Consults the static context-conflict predictor first
    (:func:`repro.analysis.staticcheck.static_conflict_pressure`): a
    genome with zero statically-reachable conflict sites cannot clear
    any positive conflict threshold, so the simulation is skipped
    outright.  The predictor guarantees zero false negatives (see
    tests/test_staticcheck_crossval.py), so skipping is sound."""
    from repro.analysis.staticcheck import static_conflict_pressure

    def holds(candidate: DemographyGenome) -> bool:
        if stats is not None:
            stats["consulted"] += 1
        if threshold > 0 and static_conflict_pressure(candidate) == 0:
            if stats is not None:
                stats["simulations_skipped"] += 1
            return False
        by_backend = evaluate_batch(runner, [candidate], ops, backends=("reference",))[0]
        outcome = by_backend["reference"]
        if outcome["violation"]:
            return False
        return outcome["metrics"]["conflict_rate"] >= threshold

    return holds


# ------------------------------------------------------------------------- corpus

def corpus_entry_name(rule_id: str, genome: DemographyGenome) -> str:
    """Deterministic corpus filename: rule slug + genome digest."""
    slug = rule_id.replace("/", "-").replace(" ", "-")
    digest = _genome_digest("%s\x00%s" % (rule_id, genome.encode()))[:12]
    return "fuzz-%s-%s.json" % (slug, digest)


def bank_corpus_entry(
    corpus_dir: str,
    rule_id: str,
    detail: str,
    genome: DemographyGenome,
    seed: int,
    check: str,
    metrics: Dict[str, object],
    baseline_conflict_rate: Optional[float] = None,
) -> str:
    """Write one corpus entry; returns the (deterministic) filename.

    ``check`` tells the replay test what must hold:

    * ``"replay-clean"`` — no violation, no divergence (regression pin
      for a finding that has since been fixed),
    * ``"max-conflicts"`` — clean AND conflict rate >=
      :data:`CONFLICT_RATIO_REQUIRED` x the kvstore baseline,
    * ``"accuracy-cliff"`` — clean AND the drift cliff still reproduces.
    """
    name = corpus_entry_name(rule_id, genome)
    cells = _genome_cells(genome.encode(), CORPUS_OPS, BACKENDS)
    entry = {
        "schema": CORPUS_SCHEMA,
        "rule_id": rule_id,
        "detail": detail,
        "check": check,
        "genome": genome.as_dict(),
        "seed": seed,
        "ops": CORPUS_OPS,
        "backends": list(BACKENDS),
        "cell_key": cells[0].key,
        "metrics": metrics,
    }
    if baseline_conflict_rate is not None:
        entry["baseline_conflict_rate"] = baseline_conflict_rate
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, name)
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return name


def load_corpus(corpus_dir: str = DEFAULT_CORPUS_DIR) -> List[Dict[str, object]]:
    """Every banked entry, sorted by filename (deterministic order)."""
    if not os.path.isdir(corpus_dir):
        return []
    entries = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(corpus_dir, name)) as handle:
            entry = json.load(handle)
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                "corpus entry %s has schema %r, expected %r"
                % (name, entry.get("schema"), CORPUS_SCHEMA)
            )
        entry["_file"] = name
        entries.append(entry)
    return entries


def replay_corpus_entry(entry: Dict[str, object]) -> Dict[str, object]:
    """Replay one banked entry under every recorded backend.

    Returns ``{"ok": bool, "problems": [...], "results": {backend: outcome}}``
    — the corpus-replay test and the nightly job both consume this.
    """
    genome = DemographyGenome.from_dict(entry["genome"])
    genome_json = genome.encode()
    seed = int(entry["seed"])
    ops = int(entry["ops"])
    problems: List[str] = []
    results: Dict[str, dict] = {}
    for backend_name in entry["backends"]:
        outcome = evaluate_genome(genome_json, seed, ops, backend_name)
        results[backend_name] = outcome
        if outcome["violation"]:
            problems.append(
                "[%s] invariant %s" % (backend_name, outcome["violation"]["rule"])
            )
    fingerprints = {
        name: json.dumps(outcome["fingerprint"], sort_keys=True)
        for name, outcome in results.items()
        if not outcome["violation"]
    }
    if len(set(fingerprints.values())) > 1:
        problems.append("fingerprint divergence across %s" % sorted(fingerprints))

    check = entry.get("check", "replay-clean")
    reference = results.get("reference") or next(iter(results.values()))
    if check == "max-conflicts" and not problems:
        baseline = max(
            BASELINE_RATE_FLOOR, float(entry.get("baseline_conflict_rate", 0.0))
        )
        rate = reference["metrics"]["conflict_rate"]
        if rate < CONFLICT_RATIO_REQUIRED * baseline:
            problems.append(
                "conflict rate %.2f below %.0fx baseline %.2f"
                % (rate, CONFLICT_RATIO_REQUIRED, baseline)
            )
    elif check == "accuracy-cliff" and not problems:
        findings = judge(results)
        if not any(f.rule_id == "inference/accuracy-cliff" for f in findings):
            problems.append("accuracy cliff no longer reproduces")
    return {"ok": not problems, "problems": problems, "results": results}


# ------------------------------------------------------------------------- search

def parse_budget(budget: str) -> Tuple[Optional[int], Optional[float]]:
    """``"64"`` -> 64 candidate evaluations (deterministic);
    ``"120s"`` -> a 120-second time box (nightly mode)."""
    text = str(budget).strip()
    if text.endswith("s"):
        seconds = float(text[:-1])
        if seconds <= 0:
            raise ValueError("budget time box must be positive: %r" % budget)
        return None, seconds
    count = int(text)
    if count <= 0:
        raise ValueError("budget must be positive: %r" % budget)
    return count, None


def _next_candidate(
    rng: random.Random,
    best: Dict[str, Tuple[float, DemographyGenome]],
    seen: set,
) -> DemographyGenome:
    """One new candidate: mutate a current objective winner (mostly) or
    inject a fresh random genome (exploration); dedupe against ``seen``."""
    for _ in range(32):
        winners = [genome for _, genome in best.values()]
        if winners and rng.random() < 0.75:
            candidate = rng.choice(winners).mutate(rng)
        else:
            candidate = random_genome(rng)
        if candidate.encode() not in seen:
            return candidate
    # a collision storm means the neighbourhood is exhausted; mutate
    # harder (two steps) without the dedupe guarantee
    base = rng.choice(winners) if winners else HOSTILE_DEFAULT
    return base.mutate(rng).mutate(rng)


def fuzz(
    runner: Runner,
    budget: str = "32",
    objectives: Sequence[str] = tuple(sorted(OBJECTIVE_METRICS)),
    corpus_dir: str = DEFAULT_CORPUS_DIR,
    generation_size: int = 6,
    progress=None,
) -> Dict[str, object]:
    """The search loop; returns the fuzz report payload.

    ``runner`` supplies the base seed, job count and cache.  The
    candidate stream starts from :data:`HOSTILE_DEFAULT` plus seeded
    random genomes and evolves toward the objectives; every oracle
    finding is shrunk and banked, and the conflict-objective winner is
    banked when it clears the acceptance ratio.
    """
    unknown = [name for name in objectives if name not in OBJECTIVE_METRICS]
    if unknown:
        raise KeyError(
            "unknown fuzz objective(s) %s (choose from: %s)"
            % (", ".join(sorted(unknown)), ", ".join(sorted(OBJECTIVE_METRICS)))
        )
    count_budget, time_budget = parse_budget(budget)
    deadline = time.time() + time_budget if time_budget is not None else None
    rng = random.Random(derive_seed("fuzz-search", runner.base_seed))
    ops = scaled_ops(FUZZ_EVAL_BASE_OPS)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    baseline_rate = measure_baseline(runner, CORPUS_OPS)
    note("baseline %s conflict rate: %.2f" % (BASELINE_WORKLOAD, baseline_rate))
    conflict_threshold = CONFLICT_RATIO_REQUIRED * baseline_rate

    seen: set = {HOSTILE_DEFAULT.encode()}
    best: Dict[str, Tuple[float, DemographyGenome]] = {}
    findings_log: List[Dict[str, object]] = []
    banked: List[str] = []
    banked_rules: set = set()
    evals_done = 0
    generation = 0

    pending: List[DemographyGenome] = [HOSTILE_DEFAULT]
    while True:
        if count_budget is not None and evals_done >= count_budget:
            break
        if deadline is not None and time.time() >= deadline:
            break
        batch = list(pending)
        pending = []
        room = (
            count_budget - evals_done - len(batch)
            if count_budget is not None
            else generation_size - len(batch)
        )
        for _ in range(max(0, min(generation_size - len(batch), room))):
            candidate = _next_candidate(rng, best, seen)
            seen.add(candidate.encode())
            batch.append(candidate)
        if not batch:
            break
        generation += 1
        outcomes = evaluate_batch(runner, batch, ops)
        evals_done += len(batch)

        for genome, by_backend in zip(batch, outcomes):
            reference = by_backend["reference"]
            metrics = reference.get("metrics", {})
            if not reference.get("violation"):
                for objective in objectives:
                    score = float(metrics.get(OBJECTIVE_METRICS[objective], 0.0))
                    if objective not in best or score > best[objective][0]:
                        best[objective] = (score, genome)

            for finding in judge(by_backend):
                findings_log.append(
                    {"rule_id": finding.rule_id, "detail": finding.detail}
                )
                if finding.rule_id in banked_rules:
                    continue
                # entries bank and replay at CORPUS_OPS, so the finding
                # must hold there — both as the shrink predicate and as
                # the banking gate (a finding that only manifests at
                # eval ops would bank an entry tier-1 replay rejects)
                holds = _finding_holds(runner, finding.rule_id, CORPUS_OPS)
                if not holds(genome):
                    note(
                        "finding %s does not reproduce at corpus ops; not banked"
                        % finding.rule_id
                    )
                    continue
                banked_rules.add(finding.rule_id)
                note("finding %s — shrinking" % finding.rule_id)
                shrunk = shrink_genome(genome, holds)
                check = (
                    "accuracy-cliff"
                    if finding.rule_id == "inference/accuracy-cliff"
                    else "replay-clean"
                )
                shrunk_outcome = evaluate_batch(runner, [shrunk], CORPUS_OPS)[0]
                banked.append(
                    bank_corpus_entry(
                        corpus_dir,
                        finding.rule_id,
                        finding.detail,
                        shrunk,
                        seed=runner.seed_for(
                            _genome_cells(shrunk.encode(), CORPUS_OPS, BACKENDS)[0]
                        ),
                        check=check,
                        metrics=shrunk_outcome["reference"].get("metrics", {}),
                    )
                )
        note(
            "generation %d: %d evals, best %s"
            % (
                generation,
                evals_done,
                ", ".join(
                    "%s=%.2f" % (name, best[name][0]) for name in sorted(best)
                ),
            )
        )

    # Bank the conflict-objective winner when it clears the acceptance
    # ratio at corpus ops (shrunk against that same threshold).
    objective_entry: Optional[str] = None
    predictor_stats = {"consulted": 0, "simulations_skipped": 0}
    if "conflicts" in best:
        holds = _conflict_holds(
            runner, conflict_threshold, CORPUS_OPS, stats=predictor_stats
        )
        winner = best["conflicts"][1]
        if holds(winner):
            shrunk = shrink_genome(winner, holds)
            final = evaluate_batch(runner, [shrunk], CORPUS_OPS)[0]
            # the winner must be bug-free (no sanitizer/differential
            # finding); a high prediction drift is the *point* of a
            # hostile genome, so the accuracy cliff does not block it
            clean = not any(
                finding.rule_id.startswith(("invariant/", "differential/"))
                for finding in judge(final)
            )
            if clean:
                objective_entry = bank_corpus_entry(
                    corpus_dir,
                    "objective/max-conflicts",
                    "conflict rate %.2f vs baseline %.2f (>= %.0fx)"
                    % (
                        final["reference"]["metrics"]["conflict_rate"],
                        baseline_rate,
                        CONFLICT_RATIO_REQUIRED,
                    ),
                    shrunk,
                    seed=runner.seed_for(
                        _genome_cells(shrunk.encode(), CORPUS_OPS, BACKENDS)[0]
                    ),
                    check="max-conflicts",
                    metrics=final["reference"]["metrics"],
                    baseline_conflict_rate=baseline_rate,
                )
                banked.append(objective_entry)
                note("banked objective winner %s" % objective_entry)

    return {
        "schema": "rolp-bench/fuzz-report/v1",
        "base_seed": runner.base_seed,
        "budget": budget,
        "evaluations": evals_done,
        "generations": generation,
        "eval_ops": ops,
        "corpus_ops": CORPUS_OPS,
        "inference_period_gcs": FUZZ_INFERENCE_PERIOD,
        "baseline": {
            "workload": BASELINE_WORKLOAD,
            "conflict_rate": baseline_rate,
        },
        "objectives": {
            name: {
                "metric": OBJECTIVE_METRICS[name],
                "score": best[name][0],
                "genome": best[name][1].as_dict(),
            }
            for name in sorted(best)
        },
        "findings": findings_log,
        "corpus_entries": banked,
        "static_predictor": predictor_stats,
    }


def report_failure_rules(report: Dict[str, object]) -> List[str]:
    """The finding rule ids that must fail a CI fuzz run: sanitizer
    trips and cross-backend divergence.  Accuracy-cliff findings are
    search intelligence (banked, not fatal) — advice quality degrading
    under a hostile demography is an observation, not a broken
    invariant."""
    findings = report.get("findings", [])
    return sorted(
        {
            str(finding["rule_id"])
            for finding in findings
            if str(finding["rule_id"]).startswith(("invariant/", "differential/"))
        }
    )


def render_fuzz_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a fuzz report payload."""
    lines = [
        "budget %s | %d evaluations over %d generations | eval ops %d"
        % (
            report["budget"],
            report["evaluations"],
            report["generations"],
            report["eval_ops"],
        ),
        "baseline %s conflict rate: %.2f"
        % (report["baseline"]["workload"], report["baseline"]["conflict_rate"]),
    ]
    objectives = report.get("objectives", {})
    for name in sorted(objectives):
        lines.append(
            "objective %-9s best %s = %.3f"
            % (name, objectives[name]["metric"], objectives[name]["score"])
        )
    findings = report.get("findings", [])
    if findings:
        lines.append("findings: %d" % len(findings))
        for finding in findings:
            lines.append("  %s — %s" % (finding["rule_id"], finding["detail"]))
    else:
        lines.append("findings: none")
    entries = report.get("corpus_entries", [])
    if entries:
        lines.append("corpus entries banked: %d" % len(entries))
        for name in entries:
            lines.append("  %s" % name)
    else:
        lines.append("corpus entries banked: none")
    return "\n".join(lines)

"""Benchmark harness regenerating every table and figure of the paper's
evaluation (see DESIGN.md's experiment index)."""

from repro.bench import ablations, figures, tables
from repro.bench.config import bench_scale, scaled_ops
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    make_big_workload,
    run_big_workload,
)

__all__ = [
    "BIG_WORKLOADS",
    "ablations",
    "bench_scale",
    "figures",
    "make_big_workload",
    "run_big_workload",
    "scaled_ops",
    "tables",
]

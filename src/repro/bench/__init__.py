"""Benchmark harness regenerating every table and figure of the paper's
evaluation (see DESIGN.md's experiment index)."""

from repro.bench import ablations, figures, tables
from repro.bench.config import bench_scale, scaled_ops
from repro.bench.runner import (
    Cell,
    ResultCache,
    Runner,
    cell_kind,
    derive_seed,
    make_cell,
    shared_seed_scope,
)
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    big_workload_ops,
    make_big_workload,
    run_big_workload,
)

__all__ = [
    "BIG_WORKLOADS",
    "Cell",
    "ResultCache",
    "Runner",
    "ablations",
    "bench_scale",
    "big_workload_ops",
    "cell_kind",
    "derive_seed",
    "figures",
    "make_big_workload",
    "make_cell",
    "run_big_workload",
    "scaled_ops",
    "shared_seed_scope",
    "tables",
]

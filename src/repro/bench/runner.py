"""Parallel experiment runner with on-disk result caching.

The paper's evaluation is a grid of (workload x collector x config)
simulations; Figures 6-10 and Tables 1-2 all re-run overlapping subsets
of it.  This module turns every experiment into independent *cells*:

* a :class:`Cell` is one simulation (or one tightly-coupled group of
  simulations, e.g. a Table 2 profile run) named by a *kind* plus a
  sorted tuple of scalar parameters.  ``cell.key`` is a stable,
  human-readable identity string;
* every cell runs with a deterministic seed derived from
  ``(cell key, base seed)`` via SHA-256 (:func:`derive_seed`), so a cell
  produces bit-identical results no matter which worker runs it, in
  which order, on which machine;
* a :class:`Runner` fans cells out across a ``multiprocessing`` pool
  (``jobs > 1``) or executes them inline (``jobs = 1``, the default —
  this path also carries per-run telemetry), merging results back in
  *submission* order so parallel output is byte-identical to serial;
* a :class:`ResultCache` persists each cell's result on disk, keyed by
  a hash of the cell config + ``ROLP_BENCH_SCALE`` + seed +
  :data:`CACHE_VERSION`, so interrupted grids resume where they stopped
  and repeat runs perform zero simulations.

Cell kinds are registered by the experiment modules
(:mod:`repro.bench.figures`, :mod:`repro.bench.tables`,
:mod:`repro.bench.ablations`) with the :func:`cell_kind` decorator; a
kind's implementation must be a module-level function taking
``(seed, telemetry, **params)`` and returning a picklable result.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import default_verify_level, set_default_verify_level
from repro.bench.config import bench_scale
from repro.fastpath import backend, set_backend

#: bump when a cell implementation changes meaning — invalidates every
#: cached result produced by older code
CACHE_VERSION = "rolp-bench-cache/v5"

#: default base seed; per-cell seeds are derived from it, never used raw
DEFAULT_BASE_SEED = 42

_SCALAR_TYPES = (str, int, float, bool, type(None))


# --------------------------------------------------------------------------- cells

@dataclass(frozen=True)
class Cell:
    """One independent unit of the experiment grid."""

    kind: str
    params: Tuple[Tuple[str, object], ...]

    @property
    def key(self) -> str:
        """Stable human-readable identity, e.g.
        ``pause(collector='g1', discard_fraction=0.5, ...)``."""
        return "%s(%s)" % (
            self.kind,
            ", ".join("%s=%r" % item for item in self.params),
        )

    @property
    def label(self) -> str:
        """Short progress label (track name if the kind defines one)."""
        _ensure_kinds()
        fmt = _TRACK_NAMES.get(self.kind)
        return fmt(dict(self.params)) if fmt else self.key

    @property
    def seed_key(self) -> str:
        """The string the cell's seed derives from.

        By default the full :attr:`key`; kinds registered with a
        ``seed_scope`` drop their *treatment* parameters (collector,
        JIT mode, ablation knob) so that the cells of one controlled
        comparison replay the identical workload and differ only in the
        treatment — the paper's methodology, and what the ablation
        studies' "decisions unchanged" claims rest on.

        Registration must be forced first: a seed scope only exists
        once the module registering the kind is imported, and deriving
        a seed *before* that import would silently fall back to the
        full key — an import-order dependence the fleet server (which
        does not import the CLI's experiment modules up front) turned
        from latent into real.
        """
        _ensure_kinds()
        scope = _SEED_SCOPES.get(self.kind)
        return scope(dict(self.params)) if scope else self.key


def make_cell(kind: str, **params) -> Cell:
    """Build a cell, validating that every parameter is a scalar (the
    cache key and the seed derivation both depend on stable reprs)."""
    for name, value in params.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                "cell parameter %s=%r is not a scalar (%s)"
                % (name, value, type(value).__name__)
            )
    return Cell(kind, tuple(sorted(params.items())))


def derive_seed(key: str, base_seed: int = DEFAULT_BASE_SEED) -> int:
    """Deterministic per-cell seed from ``(cell key, base seed)``.

    SHA-256 keeps the derivation stable across Python versions and
    processes (``hash()`` is salted per process, so it must not be used
    here).
    """
    digest = hashlib.sha256(("%d\x00%s" % (base_seed, key)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_trace_id(key: str, seed: int) -> str:
    """Fleet trace id for one cell execution: 16 hex chars over the
    *full* cell key plus its derived seed.

    Unlike :attr:`Cell.seed_key` (which deliberately collides across a
    controlled comparison's treatments), the trace id must distinguish
    every cell, so it hashes the complete key.  Any artifact carrying it
    — trace events, metrics labels, ``pause_report.json``, cached
    results — joins back to exactly one simulated run.
    """
    digest = hashlib.sha256(("trace\x00%d\x00%s" % (seed, key)).encode()).hexdigest()
    return digest[:16]


# ------------------------------------------------------------------- kind registry

_CELL_KINDS: Dict[str, Callable[..., object]] = {}
_TRACK_NAMES: Dict[str, Callable[[Dict[str, object]], str]] = {}
_SEED_SCOPES: Dict[str, Callable[[Dict[str, object]], str]] = {}


def shared_seed_scope(kind: str, *treatment: str) -> Callable[[Dict[str, object]], str]:
    """A ``seed_scope`` callable: the cell key with the *treatment*
    parameters removed, so cells that differ only in them derive the
    same seed (e.g. one pause-study workload replayed under each
    collector)."""

    def scope(params: Dict[str, object]) -> str:
        items = sorted(
            (name, value) for name, value in params.items() if name not in treatment
        )
        return "%s(%s)" % (kind, ", ".join("%s=%r" % item for item in items))

    return scope


def cell_kind(
    name: str,
    track: Optional[Callable[[Dict[str, object]], str]] = None,
    seed_scope: Optional[Callable[[Dict[str, object]], str]] = None,
):
    """Register a cell implementation under ``name``.

    ``track`` maps the cell's params to the telemetry track name used
    when the cell runs inline with a session attached (kept identical to
    the pre-runner track names, e.g. ``cassandra-wi/g1``).

    ``seed_scope`` (usually :func:`shared_seed_scope`) maps the params
    to the string the seed derives from, when that must *not* be the
    full cell key — see :attr:`Cell.seed_key`.
    """

    def register(fn: Callable[..., object]) -> Callable[..., object]:
        _CELL_KINDS[name] = fn
        if track is not None:
            _TRACK_NAMES[name] = track
        if seed_scope is not None:
            _SEED_SCOPES[name] = seed_scope
        return fn

    return register


def _ensure_kinds() -> None:
    """Import every module that registers cell kinds (needed when a
    worker starts from a fresh interpreter, i.e. spawn start method)."""
    from repro.bench import ablations, cli, figures, fuzz, perf, tables  # noqa: F401
    from repro.server import jobs  # noqa: F401  (registers session_step)


def registered_cell_kinds() -> List[str]:
    """Every registered cell kind name, sorted — the fleet server's
    admissible job vocabulary."""
    _ensure_kinds()
    return sorted(_CELL_KINDS)


def cell_implementation(kind: str) -> Callable[..., object]:
    """The implementation function behind a registered kind (the server
    binds job params against its signature at admission time)."""
    _ensure_kinds()
    return _CELL_KINDS[kind]


def _execute(cell: Cell, seed: int, telemetry=None):
    _ensure_kinds()
    try:
        fn = _CELL_KINDS[cell.kind]
    except KeyError:
        raise KeyError(
            "unknown cell kind %r (registered: %s)"
            % (cell.kind, ", ".join(sorted(_CELL_KINDS)))
        )
    return fn(seed=seed, telemetry=telemetry, **dict(cell.params))


def _pool_execute(payload: Tuple[Cell, int, int, str]):
    """Worker-side entry point (module-level so it pickles).

    Carries the ambient verify level and execution backend explicitly:
    fork workers inherit them, but spawn workers start from a fresh
    interpreter where the defaults would silently revert.
    """
    cell, seed, verify_level, backend_name = payload
    set_default_verify_level(verify_level)
    set_backend(backend_name)
    return _execute(cell, seed, telemetry=None)


# -------------------------------------------------------------------------- cache

class ResultCache:
    """Pickle-per-cell disk cache.

    Layout: ``<dir>/<kind>/<sha256 of key material>.pkl``.  The key
    material covers the cache version, the cell kind + params, the
    derived seed and ``ROLP_BENCH_SCALE`` — anything else (code
    changes) is handled by bumping :data:`CACHE_VERSION`.  Writes are
    atomic (tmp file + rename) so an interrupted run never leaves a
    truncated entry behind.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def key_material(self, cell: Cell, seed: int) -> str:
        # The verify level is ambient rather than a cell param (so cell
        # keys and derived seeds stay comparable with the unverified
        # goldens), but verified and unverified runs must never share
        # cache entries — a verified run that hit an unverified entry
        # would claim checks it never performed.
        # The execution backend is in the key for the same reason: the
        # optimised and reference backends are proven equivalent, but the
        # differential suite must be able to populate every side without
        # one backend's entries masking another's actual execution.
        return "\n".join(
            (
                CACHE_VERSION,
                cell.key,
                "seed=%d" % seed,
                "scale=%r" % bench_scale(),
                "verify=%d" % default_verify_level(),
                "backend=%s" % backend(),
            )
        )

    def path(self, cell: Cell, seed: int) -> str:
        digest = hashlib.sha256(self.key_material(cell, seed).encode()).hexdigest()
        return os.path.join(self.directory, cell.kind, digest + ".pkl")

    def load(self, cell: Cell, seed: int) -> Tuple[bool, object]:
        """``(hit, result)`` — unreadable/corrupt entries count as misses."""
        path = self.path(cell, seed)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return False, None
        if entry.get("key_material") != self.key_material(cell, seed):
            return False, None
        return True, entry["result"]

    def store(self, cell: Cell, seed: int, result: object) -> None:
        path = self.path(cell, seed)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as handle:
            pickle.dump(
                {
                    "key_material": self.key_material(cell, seed),
                    "cell_key": cell.key,
                    # fleet identity: the id every artifact of this cell
                    # carries (load() ignores it, so old entries remain
                    # valid — it is provenance, not key material)
                    "trace_id": derive_trace_id(cell.key, seed),
                    "result": result,
                },
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp, path)


# ------------------------------------------------------------------------- runner

@dataclass
class RunnerStats:
    """Hit/miss/execution counters for one :class:`Runner` lifetime."""

    cells: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: simulations actually executed (== cache_misses; kept separate so
    #: the acceptance criterion "a warm-cache re-run performs zero
    #: simulations" reads off one field)
    simulations: int = 0
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "cells": self.cells,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulations": self.simulations,
            "elapsed_s": round(self.elapsed_s, 3),
        }


class Runner:
    """Executes cells inline or across a worker pool, with caching.

    One runner spans one bench invocation: it carries an in-memory memo
    (so ``fig8`` and ``fig9``, or ``fig6`` and ``table2``, share their
    overlapping cells within a single ``rolp-bench all``), the disk
    cache, the worker-pool size and the telemetry session used for
    progress counters and — inline only — per-run trace tracks.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        base_seed: int = DEFAULT_BASE_SEED,
        session=None,
        progress: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.base_seed = base_seed
        self.session = session
        self.progress = progress
        self.stats = RunnerStats()
        self._memo: Dict[Cell, object] = {}
        #: cell key -> trace id, for every cell this runner has seen —
        #: exported into artifact JSONs so results join to recordings
        self.trace_ids: Dict[str, str] = {}

    # -- telemetry ---------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.session is not None:
            self.session.metrics.counter(
                "bench_runner_" + name, "experiment-runner %s" % name
            ).inc(amount)

    def _note(self, index: int, total: int, cell: Cell, outcome: str, secs: float) -> None:
        if self.progress:
            print(
                "[runner] (%d/%d) %-40s %s (%.2fs)"
                % (index, total, cell.label, outcome, secs),
                file=sys.stderr,
            )

    # -- execution ---------------------------------------------------------------

    def seed_for(self, cell: Cell) -> int:
        return derive_seed(cell.seed_key, self.base_seed)

    def trace_id_for(self, cell: Cell) -> str:
        return derive_trace_id(cell.key, self.seed_for(cell))

    def run(self, cells: Sequence[Cell]) -> List[object]:
        """Execute ``cells``, returning results in the given order.

        Duplicate cells (within this call or across earlier calls on
        the same runner) execute once.  Results merge deterministically:
        position ``i`` of the return value is cell ``i``'s result
        regardless of pool scheduling.
        """
        started = time.time()
        pending: List[Cell] = []  # unique cells needing execution, in order
        for cell in cells:
            self.trace_ids.setdefault(cell.key, self.trace_id_for(cell))
            if cell in self._memo or cell in pending:
                continue
            pending.append(cell)
        self.stats.cells += len(pending)
        self.stats.memo_hits += sum(1 for cell in cells if cell in self._memo)

        to_run: List[Cell] = []
        total = len(pending)
        for index, cell in enumerate(pending, 1):
            seed = self.seed_for(cell)
            if self.cache is not None:
                hit, result = self.cache.load(cell, seed)
                if hit:
                    self._memo[cell] = result
                    self.stats.cache_hits += 1
                    self._count("cache_hits")
                    self._note(index, total, cell, "cache hit", 0.0)
                    continue
            to_run.append(cell)

        self.stats.cache_misses += len(to_run)
        self.stats.simulations += len(to_run)
        self._count("cells", len(pending))
        self._count("cache_misses", len(to_run))
        self._count("simulations", len(to_run))

        if self.jobs > 1 and len(to_run) > 1:
            self._run_pool(to_run)
        else:
            self._run_inline(to_run, total)

        self.stats.elapsed_s += time.time() - started
        return [self._memo[cell] for cell in cells]

    async def run_async(self, cells: Sequence[Cell], executor=None) -> List[object]:
        """Event-loop-friendly :meth:`run`: executes the cells on
        ``executor`` (or the loop's default) so simulations never block
        the loop that is multiplexing sessions.

        The runner itself is not thread-safe; callers that share one
        runner across tasks (the fleet server's batcher) must serialize
        calls — a single-worker executor does exactly that.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, self.run, list(cells))

    def _run_inline(self, cells: Sequence[Cell], total: int) -> None:
        for index, cell in enumerate(cells, 1):
            trace_id = self.trace_id_for(cell)
            telemetry = (
                self.session.for_run(cell.label, trace_id=trace_id)
                if self.session is not None
                else None
            )
            if self.session is not None:
                self.session.metrics.counter(
                    "bench_cell_runs_total", "cell executions, joinable by trace id"
                ).inc(1, kind=cell.kind, trace_id=trace_id)
            cell_started = time.time()
            result = _execute(cell, self.seed_for(cell), telemetry=telemetry)
            self._note(index, total, cell, "ran", time.time() - cell_started)
            self._finish(cell, result)

    def _run_pool(self, cells: Sequence[Cell]) -> None:
        # fork (where available) inherits the kind registry and the
        # environment; spawn re-imports the experiment modules via
        # _ensure_kinds().  Workers run without per-run telemetry —
        # trace tracks only exist on the inline path (documented in
        # docs/benchmarking.md).
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        payloads = [
            (cell, self.seed_for(cell), default_verify_level(), backend())
            for cell in cells
        ]
        total = len(cells)
        with context.Pool(processes=min(self.jobs, len(cells))) as pool:
            started = time.time()
            for index, (cell, result) in enumerate(
                zip(cells, pool.imap(_pool_execute, payloads)), 1
            ):
                self._note(index, total, cell, "ran", time.time() - started)
                self._finish(cell, result)

    def _finish(self, cell: Cell, result: object) -> None:
        self._memo[cell] = result
        if self.cache is not None:
            self.cache.store(cell, self.seed_for(cell), result)


def run_cells(cells: Sequence[Cell], runner: Optional[Runner] = None, session=None) -> List[object]:
    """Experiment-module helper: run ``cells`` on ``runner``, or on a
    throwaway inline runner carrying ``session`` (the pre-runner
    behavior of every ``figureN()``/``tableN()`` call)."""
    if runner is None:
        runner = Runner(session=session)
    return runner.run(cells)

"""Table 1 and Table 2 reproduction.

* **Table 1** — Big Data benchmark profiling summary: for each of the
  six large-scale workloads under ROLP, the fraction of allocation
  sites (PAS) and method-call sites (PMC) that received profiling code,
  the number of allocation-context conflicts (#CFs), the number of
  hand annotations the NG2C baseline needs, and the OLD table's memory
  footprint.
* **Table 2** — DaCapo profiling: per benchmark, the heap size, the
  profiled method-call and allocation-site counts, the number of
  conflicts, and the expected throughput overhead of tracking P=20% of
  all method calls (the conflict-resolution cost simulation reported on
  the right side of the paper's table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import RolpConfig, RolpProfiler
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.metrics.report import render_table
from repro.runtime import JavaVM, VMFlags
from repro.workloads.base import run_workload
from repro.workloads.dacapo import DACAPO_SPECS, DaCapoSpec, DaCapoWorkload
from repro.bench.config import DACAPO_OVERHEAD_OPS, DACAPO_PROFILE_OPS, scaled_ops
from repro.bench.workload_registry import BIG_WORKLOADS, run_big_workload


@dataclass
class Table1Row:
    workload: str
    pas_percent: float
    pmc_percent: float
    conflicts: int
    ng2c_annotations: int
    old_table_mb: float


def table1(
    workload_names: Optional[Sequence[str]] = None, session=None
) -> List[Table1Row]:
    """Run the six large workloads under ROLP and collect Table 1.

    ``session`` (a :class:`repro.telemetry.TelemetrySession`) records a
    trace/metrics track per run; the default records nothing.
    """
    rows: List[Table1Row] = []
    for name in workload_names or sorted(BIG_WORKLOADS):
        telemetry = session.for_run("table1/%s/rolp" % name) if session else None
        result, workload = run_big_workload(name, "rolp", telemetry=telemetry)
        vm = workload.vm
        profiler = vm.profiler
        total_alloc, total_calls = workload.count_sites()
        pas = vm.jit.profiled_alloc_site_count / total_alloc * 100 if total_alloc else 0
        pmc = vm.jit.profiled_call_site_count / total_calls * 100 if total_calls else 0
        rows.append(
            Table1Row(
                workload=name,
                pas_percent=pas,
                pmc_percent=pmc,
                conflicts=profiler.resolver.conflicts_seen,
                ng2c_annotations=workload.annotated_sites,
                old_table_mb=profiler.old_table_memory_bytes() / (1 << 20),
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    return render_table(
        ["workload", "PAS %", "PMC %", "#CFs", "NG2C", "OLD MB"],
        [
            [
                r.workload,
                "%.1f" % r.pas_percent,
                "%.1f" % r.pmc_percent,
                r.conflicts,
                r.ng2c_annotations,
                "%.0f" % r.old_table_mb,
            ]
            for r in rows
        ],
    )


@dataclass
class Table2Row:
    benchmark: str
    heap_mb: int
    pmc: int
    pas: int
    conflicts: int
    #: expected throughput overhead of tracking 20% of method calls
    conflict_overhead_percent: float


def _run_dacapo(
    spec: DaCapoSpec,
    mode: str,
    profiled: bool,
    operations: int,
    telemetry=None,
) -> JavaVM:
    """One DaCapo run on G1 (profiling overhead isolated from GC
    policy changes, as in the paper's Figure 6 setup)."""
    workload = DaCapoWorkload(spec)
    heap = RegionHeap(workload.heap_mb << 20)
    gc = G1Collector(heap, BandwidthModel(), young_regions=workload.young_regions)
    profiler = RolpProfiler(RolpConfig()) if profiled else None
    vm = JavaVM(gc, profiler, VMFlags(call_profiling_mode=mode), telemetry)
    workload.build(vm)
    for op_index in range(operations):
        workload.run_op(op_index)
    return vm


def table2(specs: Optional[Sequence[DaCapoSpec]] = None, session=None) -> List[Table2Row]:
    """Run the DaCapo suite under ROLP and collect Table 2."""
    rows: List[Table2Row] = []
    profile_ops = scaled_ops(DACAPO_PROFILE_OPS)
    overhead_ops = scaled_ops(DACAPO_OVERHEAD_OPS)
    for spec in specs or DACAPO_SPECS:
        # Conflict discovery run (ROLP on NG2C, full pipeline).
        workload = DaCapoWorkload(spec)
        telemetry = session.for_run("table2/%s/rolp" % spec.name) if session else None
        run_workload(workload, "rolp", operations=profile_ops, telemetry=telemetry)
        vm = workload.vm
        conflicts = vm.profiler.resolver.conflicts_seen

        # Overhead simulation: what would tracking 20% of method calls
        # cost?  Measured as 20% of the fast→slow execution-time gap.
        base = _run_dacapo(spec, "real", profiled=False, operations=overhead_ops)
        fast = _run_dacapo(spec, "fast", profiled=True, operations=overhead_ops)
        slow = _run_dacapo(spec, "slow", profiled=True, operations=overhead_ops)
        gap = (slow.clock.now_ns - fast.clock.now_ns) / base.clock.now_ns
        overhead = max(0.0, 0.20 * gap * 100)

        rows.append(
            Table2Row(
                benchmark=spec.name,
                heap_mb=spec.heap_mb,
                pmc=vm.jit.profiled_call_site_count,
                pas=vm.jit.profiled_alloc_site_count,
                conflicts=conflicts,
                conflict_overhead_percent=overhead,
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    return render_table(
        ["benchmark", "HS MB", "PMC", "PAS", "CF #", "CF ovh %"],
        [
            [
                r.benchmark,
                r.heap_mb,
                r.pmc,
                r.pas,
                r.conflicts,
                "%.2f" % r.conflict_overhead_percent,
            ]
            for r in rows
        ],
    )

"""Table 1 and Table 2 reproduction.

* **Table 1** — Big Data benchmark profiling summary: for each of the
  six large-scale workloads under ROLP, the fraction of allocation
  sites (PAS) and method-call sites (PMC) that received profiling code,
  the number of allocation-context conflicts (#CFs), the number of
  hand annotations the NG2C baseline needs, and the OLD table's memory
  footprint.
* **Table 2** — DaCapo profiling: per benchmark, the heap size, the
  profiled method-call and allocation-site counts, the number of
  conflicts, and the expected throughput overhead of tracking P=20% of
  all method calls (the conflict-resolution cost simulation reported on
  the right side of the paper's table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import RolpConfig, RolpProfiler
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.metrics.report import render_table
from repro.runtime import JavaVM, VMFlags
from repro.workloads.base import run_workload
from repro.workloads.dacapo import DACAPO_SPECS, DaCapoSpec, DaCapoWorkload, get_spec
from repro.bench.config import DACAPO_OVERHEAD_OPS, DACAPO_PROFILE_OPS, scaled_ops
from repro.bench.runner import (
    Runner,
    cell_kind,
    make_cell,
    run_cells,
    shared_seed_scope,
)
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    big_workload_ops,
    run_big_workload,
)


@dataclass
class Table1Row:
    workload: str
    pas_percent: float
    pmc_percent: float
    conflicts: int
    ng2c_annotations: int
    old_table_mb: float


@cell_kind("table1", track=lambda p: "table1/%s/rolp" % p["workload"])
def _table1_cell(seed, telemetry, workload, operations) -> Table1Row:
    """One workload under ROLP, summarized straight into its table row
    (the row is what crosses the worker/cache boundary, not the VM)."""
    result, wl = run_big_workload(
        workload, "rolp", operations=operations, seed=seed, telemetry=telemetry
    )
    vm = wl.vm
    profiler = vm.profiler
    total_alloc, total_calls = wl.count_sites()
    pas = vm.jit.profiled_alloc_site_count / total_alloc * 100 if total_alloc else 0
    pmc = vm.jit.profiled_call_site_count / total_calls * 100 if total_calls else 0
    return Table1Row(
        workload=workload,
        pas_percent=pas,
        pmc_percent=pmc,
        conflicts=profiler.resolver.conflicts_seen,
        ng2c_annotations=wl.annotated_sites,
        old_table_mb=profiler.old_table_memory_bytes() / (1 << 20),
    )


def table1(
    workload_names: Optional[Sequence[str]] = None,
    session=None,
    runner: Optional[Runner] = None,
) -> List[Table1Row]:
    """Run the six large workloads under ROLP and collect Table 1.

    ``session`` (a :class:`repro.telemetry.TelemetrySession`) records a
    trace/metrics track per run; the default records nothing.
    """
    cells = [
        make_cell("table1", workload=name, operations=big_workload_ops(name))
        for name in workload_names or sorted(BIG_WORKLOADS)
    ]
    return run_cells(cells, runner, session)


def render_table1(rows: Sequence[Table1Row]) -> str:
    return render_table(
        ["workload", "PAS %", "PMC %", "#CFs", "NG2C", "OLD MB"],
        [
            [
                r.workload,
                "%.1f" % r.pas_percent,
                "%.1f" % r.pmc_percent,
                r.conflicts,
                r.ng2c_annotations,
                "%.0f" % r.old_table_mb,
            ]
            for r in rows
        ],
    )


@dataclass
class Table2Row:
    benchmark: str
    heap_mb: int
    pmc: int
    pas: int
    conflicts: int
    #: expected throughput overhead of tracking 20% of method calls
    conflict_overhead_percent: float


def _run_dacapo(
    spec: DaCapoSpec,
    mode: str,
    profiled: bool,
    operations: int,
    telemetry=None,
    seed: Optional[int] = None,
) -> JavaVM:
    """One DaCapo run on G1 (profiling overhead isolated from GC
    policy changes, as in the paper's Figure 6 setup)."""
    workload = DaCapoWorkload(spec) if seed is None else DaCapoWorkload(spec, seed=seed)
    heap = RegionHeap(workload.heap_mb << 20)
    gc = G1Collector(heap, BandwidthModel(), young_regions=workload.young_regions)
    profiler = RolpProfiler(RolpConfig()) if profiled else None
    vm = JavaVM(gc, profiler, VMFlags(call_profiling_mode=mode), telemetry)
    workload.build(vm)
    for op_index in range(operations):
        workload.run_op(op_index)
    return vm


def _dacapo_track(params) -> str:
    mode = "baseline" if not params["profiled"] else params["mode"]
    return "fig6/%s/%s" % (params["benchmark"], mode)


@cell_kind(
    "dacapo_time",
    track=_dacapo_track,
    # base/fast/slow runs of one benchmark form a controlled timing
    # comparison; only the JIT mode may differ between them
    seed_scope=shared_seed_scope("dacapo_time", "mode", "profiled"),
)
def _dacapo_time(seed, telemetry, benchmark, mode, profiled, operations) -> int:
    """Simulated execution time (ns) of one DaCapo configuration —
    shared between Figure 6 and Table 2's overhead simulation."""
    vm = _run_dacapo(
        get_spec(benchmark),
        mode,
        profiled=profiled,
        operations=operations,
        telemetry=telemetry,
        seed=seed,
    )
    return vm.clock.now_ns


def _dacapo_time_cell(benchmark: str, mode: str, profiled: bool, operations: int):
    return make_cell(
        "dacapo_time",
        benchmark=benchmark,
        mode=mode,
        profiled=profiled,
        operations=operations,
    )


@cell_kind("table2_profile", track=lambda p: "table2/%s/rolp" % p["benchmark"])
def _table2_profile(seed, telemetry, benchmark, operations):
    """Conflict discovery run (ROLP on NG2C, full pipeline)."""
    workload = DaCapoWorkload(get_spec(benchmark), seed=seed)
    run_workload(workload, "rolp", operations=operations, telemetry=telemetry)
    vm = workload.vm
    return {
        "conflicts": vm.profiler.resolver.conflicts_seen,
        "pmc": vm.jit.profiled_call_site_count,
        "pas": vm.jit.profiled_alloc_site_count,
    }


def table2(
    specs: Optional[Sequence[DaCapoSpec]] = None,
    session=None,
    runner: Optional[Runner] = None,
) -> List[Table2Row]:
    """Run the DaCapo suite under ROLP and collect Table 2.

    Per benchmark: one profile cell plus three timing cells for the
    overhead simulation — what would tracking 20% of method calls cost,
    measured as 20% of the fast→slow execution-time gap.  The timing
    cells are the same cells Figure 6 uses.
    """
    profile_ops = scaled_ops(DACAPO_PROFILE_OPS)
    overhead_ops = scaled_ops(DACAPO_OVERHEAD_OPS)
    specs = list(specs or DACAPO_SPECS)
    cells = []
    for spec in specs:
        cells.append(
            make_cell("table2_profile", benchmark=spec.name, operations=profile_ops)
        )
        cells.append(_dacapo_time_cell(spec.name, "real", False, overhead_ops))
        cells.append(_dacapo_time_cell(spec.name, "fast", True, overhead_ops))
        cells.append(_dacapo_time_cell(spec.name, "slow", True, overhead_ops))
    results = iter(run_cells(cells, runner, session))
    rows: List[Table2Row] = []
    for spec in specs:
        profile = next(results)
        base_ns = next(results)
        fast_ns = next(results)
        slow_ns = next(results)
        gap = (slow_ns - fast_ns) / base_ns
        rows.append(
            Table2Row(
                benchmark=spec.name,
                heap_mb=spec.heap_mb,
                pmc=profile["pmc"],
                pas=profile["pas"],
                conflicts=profile["conflicts"],
                conflict_overhead_percent=max(0.0, 0.20 * gap * 100),
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    return render_table(
        ["benchmark", "HS MB", "PMC", "PAS", "CF #", "CF ovh %"],
        [
            [
                r.benchmark,
                r.heap_mb,
                r.pmc,
                r.pas,
                r.conflicts,
                "%.2f" % r.conflict_overhead_percent,
            ]
            for r in rows
        ],
    )

"""Figure 6-10 reproduction.

Each ``figureN`` function regenerates the data series of the paper's
figure; each ``render_figureN`` prints the same rows/series the paper
plots.  Shapes — who wins, by what factor, where crossovers fall — are
the reproduction target; absolute milliseconds depend on the bandwidth
model's constants.

Every experiment expands into :mod:`repro.bench.runner` cells and
merges the cell results, so the same call serves the inline default, a
``--jobs N`` worker pool, and warm-cache replays (pass ``runner=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conflicts import worst_case_resolution_ns
from repro.metrics.pauses import (
    DEFAULT_PERCENTILES,
    duration_histogram,
    percentile_profile,
)
from repro.metrics.report import (
    render_histogram_series,
    render_percentile_series,
    render_table,
)
from repro.workloads.dacapo import DACAPO_SPECS, DaCapoSpec, get_spec
from repro.bench.config import (
    DACAPO_OVERHEAD_OPS,
    WARMUP_OPS,
    scaled_ops,
)
from repro.bench.runner import (
    Runner,
    cell_kind,
    make_cell,
    run_cells,
    shared_seed_scope,
)
from repro.bench.tables import _dacapo_time_cell, _run_dacapo
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    big_workload_ops,
    run_big_workload,
)

#: collectors plotted in Figures 8/9 (paper omits ZGC: pauses < 10 ms)
PAUSE_FIGURE_COLLECTORS = ("cms", "g1", "ng2c", "rolp")
#: profiling levels of Figure 6, in plot order
FIG6_MODES = ("none", "fast", "real", "slow")
FIG6_LABELS = {
    "none": "no-call-profiling",
    "fast": "fast-call-profiling",
    "real": "real-profiling",
    "slow": "slow-call-profiling",
}


# --------------------------------------------------------------------------- Figure 6

def figure6(
    specs: Optional[Sequence[DaCapoSpec]] = None,
    session=None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """DaCapo execution time normalized to G1 at four profiling levels.

    Returns ``{benchmark: {mode: normalized execution time}}``.
    ``session`` (a :class:`repro.telemetry.TelemetrySession`) records a
    trace/metrics track per run; the default records nothing.  The
    timing cells are shared with Table 2's overhead simulation, so a
    cached ``rolp-bench all`` runs each (benchmark, mode) pair once.
    """
    operations = scaled_ops(DACAPO_OVERHEAD_OPS)
    specs = list(specs or DACAPO_SPECS)
    cells = []
    for spec in specs:
        cells.append(_dacapo_time_cell(spec.name, "real", False, operations))
        for mode in FIG6_MODES:
            cells.append(_dacapo_time_cell(spec.name, mode, True, operations))
    results = iter(run_cells(cells, runner, session))
    series: Dict[str, Dict[str, float]] = {}
    for spec in specs:
        base_ns = next(results)
        series[spec.name] = {mode: next(results) / base_ns for mode in FIG6_MODES}
    return series


def render_figure6(series: Dict[str, Dict[str, float]]) -> str:
    return render_table(
        ["benchmark"] + [FIG6_LABELS[m] for m in FIG6_MODES],
        [
            [name] + ["%.3f" % row[m] for m in FIG6_MODES]
            for name, row in series.items()
        ],
    )


# --------------------------------------------------------------------------- Figure 7

@cell_kind("fig7_profile", track=lambda p: "fig7/%s/real" % p["benchmark"])
def _fig7_cell(seed, telemetry, benchmark, operations):
    """One profiled DaCapo run; returns the two inputs of the
    worst-case conflict-resolution model."""
    vm = _run_dacapo(
        get_spec(benchmark),
        "real",
        profiled=True,
        operations=operations,
        telemetry=telemetry,
        seed=seed,
    )
    cycles = max(1, vm.collector.gc_cycles)
    return {
        "call_sites": vm.jit.profiled_call_site_count,
        "avg_gc_interval_ns": vm.clock.now_ns / cycles,
    }


def figure7(
    specs: Optional[Sequence[DaCapoSpec]] = None,
    p_fractions: Sequence[float] = (0.05, 0.10, 0.20, 0.50),
    session=None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[float, float]]:
    """Worst-case conflict resolution time (ms) per benchmark and P.

    Uses each benchmark's measured jitted-call-site count and average
    inter-GC interval, plugged into the resolver's worst-case model
    (Section 5: subsets of P% per 16-GC inference pass until all call
    sites are exhausted).
    """
    operations = scaled_ops(DACAPO_OVERHEAD_OPS)
    specs = list(specs or DACAPO_SPECS)
    cells = [
        make_cell("fig7_profile", benchmark=spec.name, operations=operations)
        for spec in specs
    ]
    results = run_cells(cells, runner, session)
    series: Dict[str, Dict[float, float]] = {}
    for spec, profile in zip(specs, results):
        series[spec.name] = {
            p: worst_case_resolution_ns(
                profile["call_sites"], p, 16, profile["avg_gc_interval_ns"]
            )
            / 1e6
            for p in p_fractions
        }
    return series


def render_figure7(series: Dict[str, Dict[float, float]]) -> str:
    fractions = sorted(next(iter(series.values())).keys()) if series else []
    return render_table(
        ["benchmark"] + ["P=%d%%" % int(p * 100) for p in fractions],
        [
            [name] + ["%.0f" % row[p] for p in fractions]
            for name, row in series.items()
        ],
    )


# ------------------------------------------------------------------- Figures 8 and 9

@dataclass
class PauseStudy:
    """Pause data for one workload across the compared collectors."""

    workload: str
    pauses_ms: Dict[str, List[float]] = field(default_factory=dict)

    def percentiles(self) -> Dict[str, Dict[float, float]]:
        return {
            collector: percentile_profile(pauses)
            for collector, pauses in self.pauses_ms.items()
        }

    def histograms(self) -> Dict[str, List[Tuple[str, int]]]:
        return {
            collector: duration_histogram(pauses)
            for collector, pauses in self.pauses_ms.items()
        }


@cell_kind(
    "pause",
    track=lambda p: "%s/%s" % (p["workload"], p["collector"]),
    # one workload replayed under each collector: the collector is the
    # treatment, the operation stream must be identical across cells
    seed_scope=shared_seed_scope("pause", "collector"),
)
def _pause_cell(seed, telemetry, workload, collector, operations, discard_fraction):
    """One (workload, collector) run; returns the post-warmup pause
    durations in ms — the only data Figures 8/9 need, kept small so
    cache entries stay light."""
    result, _ = run_big_workload(
        workload, collector, operations=operations, seed=seed, telemetry=telemetry
    )
    cutoff_ns = result.elapsed_ms * 1e6 * discard_fraction
    return [p.duration_ms for p in result.pauses if p.start_ns >= cutoff_ns]


def pause_cells(
    workload_names: Optional[Sequence[str]] = None,
    collectors: Sequence[str] = PAUSE_FIGURE_COLLECTORS,
    discard_fraction: float = 0.50,
):
    """The (workload x collector) grid of Figures 8/9 as runner cells."""
    names = list(workload_names or sorted(BIG_WORKLOADS))
    return names, [
        make_cell(
            "pause",
            workload=name,
            collector=collector,
            operations=big_workload_ops(name),
            discard_fraction=discard_fraction,
        )
        for name in names
        for collector in collectors
    ]


def pause_study(
    workload_names: Optional[Sequence[str]] = None,
    collectors: Sequence[str] = PAUSE_FIGURE_COLLECTORS,
    discard_fraction: float = 0.50,
    session=None,
    runner: Optional[Runner] = None,
) -> List[PauseStudy]:
    """Shared runner for Figures 8 and 9: every workload under every
    collector, collecting the raw pause lists.

    ``discard_fraction`` drops the leading part of every run, the
    simulator's analogue of the paper discarding the first 5 of 30
    minutes to exclude JVM loading, JIT compilation and — for ROLP —
    the profile learning phase (the warmup itself is Figure 10's
    subject).  The fraction is larger than the paper's 17% because the
    scaled runs spend proportionally longer warming up.

    Cells merge in grid order, so ``--jobs N`` output is byte-identical
    to the serial run.
    """
    names, cells = pause_cells(workload_names, collectors, discard_fraction)
    results = iter(run_cells(cells, runner, session))
    studies: List[PauseStudy] = []
    for name in names:
        study = PauseStudy(workload=name)
        for collector in collectors:
            study.pauses_ms[collector] = next(results)
        studies.append(study)
    return studies


def render_figure8(studies: Sequence[PauseStudy]) -> str:
    parts = []
    for study in studies:
        parts.append(
            render_percentile_series(
                study.percentiles(), title="[Figure 8] %s pause percentiles (ms)" % study.workload
            )
        )
    return "\n\n".join(parts)


def render_figure9(studies: Sequence[PauseStudy]) -> str:
    parts = []
    for study in studies:
        parts.append(
            render_histogram_series(
                study.histograms(),
                title="[Figure 9] %s pauses per duration interval (ms)" % study.workload,
            )
        )
    return "\n\n".join(parts)


# --------------------------------------------------------------------------- Figure 10

@dataclass
class WarmupStudy:
    """Figure 10: warmup pause timeline + normalized throughput/memory."""

    #: (pause start in s, duration in ms) for the ROLP run
    rolp_timeline: List[Tuple[float, float]]
    #: collector -> throughput normalized to G1
    throughput_norm: Dict[str, float]
    #: collector -> max memory normalized to G1
    memory_norm: Dict[str, float]
    #: ROLP advice-change counts per inference pass (learning curve)
    decision_changes: List[int]


@cell_kind(
    "fig10_run",
    track=lambda p: "fig10/%s/%s" % (p["workload"], p["collector"]),
    seed_scope=shared_seed_scope("fig10_run", "collector"),
)
def _fig10_cell(seed, telemetry, workload, collector, operations):
    result, wl = run_big_workload(
        workload, collector, operations=operations, seed=seed, telemetry=telemetry
    )
    summary = {
        "throughput_ops_s": result.throughput_ops_s,
        "max_memory_bytes": result.max_memory_bytes,
    }
    if collector == "rolp":
        summary["timeline"] = result.pause_timeline()
        summary["decision_changes"] = list(wl.vm.profiler.decision_change_log)
    return summary


def figure10(
    workload_name: str = "cassandra-wi",
    collectors: Sequence[str] = ("cms", "zgc", "ng2c", "rolp"),
    session=None,
    runner: Optional[Runner] = None,
) -> WarmupStudy:
    operations = scaled_ops(WARMUP_OPS)
    cells = [
        make_cell(
            "fig10_run",
            workload=workload_name,
            collector=collector,
            operations=operations,
        )
        for collector in ("g1",) + tuple(collectors)
    ]
    results = run_cells(cells, runner, session)
    g1 = results[0]

    throughput_norm = {"g1": 1.0}
    memory_norm = {"g1": 1.0}
    rolp_timeline: List[Tuple[float, float]] = []
    decision_changes: List[int] = []
    for collector, summary in zip(collectors, results[1:]):
        throughput_norm[collector] = (
            summary["throughput_ops_s"] / g1["throughput_ops_s"]
        )
        memory_norm[collector] = summary["max_memory_bytes"] / g1["max_memory_bytes"]
        if collector == "rolp":
            rolp_timeline = summary["timeline"]
            decision_changes = summary["decision_changes"]
    return WarmupStudy(
        rolp_timeline=rolp_timeline,
        throughput_norm=throughput_norm,
        memory_norm=memory_norm,
        decision_changes=decision_changes,
    )


def render_figure10(study: WarmupStudy, buckets: int = 12) -> str:
    parts = ["[Figure 10] Cassandra WI warmup pause times (ROLP)"]
    if study.rolp_timeline:
        end = study.rolp_timeline[-1][0] or 1.0
        width = end / buckets
        rows = []
        for i in range(buckets):
            window = [
                d for (t, d) in study.rolp_timeline if i * width <= t < (i + 1) * width
            ]
            rows.append(
                [
                    "%.2f-%.2fs" % (i * width, (i + 1) * width),
                    len(window),
                    "%.2f" % (sum(window) / len(window)) if window else "-",
                    "%.2f" % max(window) if window else "-",
                ]
            )
        parts.append(render_table(["window", "pauses", "avg ms", "max ms"], rows))
    parts.append("decision changes per inference pass: %s" % study.decision_changes)
    collectors = sorted(study.throughput_norm)
    parts.append(
        render_table(
            ["metric"] + collectors,
            [
                ["throughput/G1"]
                + ["%.3f" % study.throughput_norm[c] for c in collectors],
                ["max-memory/G1"]
                + ["%.3f" % study.memory_norm[c] for c in collectors],
            ],
        )
    )
    return "\n".join(parts)

"""Figure 6-10 reproduction.

Each ``figureN`` function regenerates the data series of the paper's
figure; each ``render_figureN`` prints the same rows/series the paper
plots.  Shapes — who wins, by what factor, where crossovers fall — are
the reproduction target; absolute milliseconds depend on the bandwidth
model's constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conflicts import worst_case_resolution_ns
from repro.metrics.pauses import (
    DEFAULT_PERCENTILES,
    duration_histogram,
    percentile_profile,
)
from repro.metrics.report import (
    render_histogram_series,
    render_percentile_series,
    render_table,
)
from repro.workloads.dacapo import DACAPO_SPECS, DaCapoSpec
from repro.bench.config import (
    DACAPO_OVERHEAD_OPS,
    WARMUP_OPS,
    scaled_ops,
)
from repro.bench.tables import _run_dacapo
from repro.bench.workload_registry import BIG_WORKLOADS, run_big_workload

#: collectors plotted in Figures 8/9 (paper omits ZGC: pauses < 10 ms)
PAUSE_FIGURE_COLLECTORS = ("cms", "g1", "ng2c", "rolp")
#: profiling levels of Figure 6, in plot order
FIG6_MODES = ("none", "fast", "real", "slow")
FIG6_LABELS = {
    "none": "no-call-profiling",
    "fast": "fast-call-profiling",
    "real": "real-profiling",
    "slow": "slow-call-profiling",
}


# --------------------------------------------------------------------------- Figure 6

def figure6(
    specs: Optional[Sequence[DaCapoSpec]] = None, session=None
) -> Dict[str, Dict[str, float]]:
    """DaCapo execution time normalized to G1 at four profiling levels.

    Returns ``{benchmark: {mode: normalized execution time}}``.
    ``session`` (a :class:`repro.telemetry.TelemetrySession`) records a
    trace/metrics track per run; the default records nothing.
    """
    operations = scaled_ops(DACAPO_OVERHEAD_OPS)
    series: Dict[str, Dict[str, float]] = {}
    for spec in specs or DACAPO_SPECS:
        baseline = _run_dacapo(
            spec,
            "real",
            profiled=False,
            operations=operations,
            telemetry=session.for_run("fig6/%s/baseline" % spec.name) if session else None,
        )
        base_ns = baseline.clock.now_ns
        row: Dict[str, float] = {}
        for mode in FIG6_MODES:
            vm = _run_dacapo(
                spec,
                mode,
                profiled=True,
                operations=operations,
                telemetry=session.for_run("fig6/%s/%s" % (spec.name, mode))
                if session
                else None,
            )
            row[mode] = vm.clock.now_ns / base_ns
        series[spec.name] = row
    return series


def render_figure6(series: Dict[str, Dict[str, float]]) -> str:
    return render_table(
        ["benchmark"] + [FIG6_LABELS[m] for m in FIG6_MODES],
        [
            [name] + ["%.3f" % row[m] for m in FIG6_MODES]
            for name, row in series.items()
        ],
    )


# --------------------------------------------------------------------------- Figure 7

def figure7(
    specs: Optional[Sequence[DaCapoSpec]] = None,
    p_fractions: Sequence[float] = (0.05, 0.10, 0.20, 0.50),
    session=None,
) -> Dict[str, Dict[float, float]]:
    """Worst-case conflict resolution time (ms) per benchmark and P.

    Uses each benchmark's measured jitted-call-site count and average
    inter-GC interval, plugged into the resolver's worst-case model
    (Section 5: subsets of P% per 16-GC inference pass until all call
    sites are exhausted).
    """
    operations = scaled_ops(DACAPO_OVERHEAD_OPS)
    series: Dict[str, Dict[float, float]] = {}
    for spec in specs or DACAPO_SPECS:
        vm = _run_dacapo(
            spec,
            "real",
            profiled=True,
            operations=operations,
            telemetry=session.for_run("fig7/%s/real" % spec.name) if session else None,
        )
        call_sites = vm.jit.profiled_call_site_count
        cycles = max(1, vm.collector.gc_cycles)
        avg_gc_interval_ns = vm.clock.now_ns / cycles
        series[spec.name] = {
            p: worst_case_resolution_ns(call_sites, p, 16, avg_gc_interval_ns) / 1e6
            for p in p_fractions
        }
    return series


def render_figure7(series: Dict[str, Dict[float, float]]) -> str:
    fractions = sorted(next(iter(series.values())).keys()) if series else []
    return render_table(
        ["benchmark"] + ["P=%d%%" % int(p * 100) for p in fractions],
        [
            [name] + ["%.0f" % row[p] for p in fractions]
            for name, row in series.items()
        ],
    )


# ------------------------------------------------------------------- Figures 8 and 9

@dataclass
class PauseStudy:
    """Pause data for one workload across the compared collectors."""

    workload: str
    pauses_ms: Dict[str, List[float]] = field(default_factory=dict)

    def percentiles(self) -> Dict[str, Dict[float, float]]:
        return {
            collector: percentile_profile(pauses)
            for collector, pauses in self.pauses_ms.items()
        }

    def histograms(self) -> Dict[str, List[Tuple[str, int]]]:
        return {
            collector: duration_histogram(pauses)
            for collector, pauses in self.pauses_ms.items()
        }


def pause_study(
    workload_names: Optional[Sequence[str]] = None,
    collectors: Sequence[str] = PAUSE_FIGURE_COLLECTORS,
    discard_fraction: float = 0.50,
    session=None,
) -> List[PauseStudy]:
    """Shared runner for Figures 8 and 9: every workload under every
    collector, collecting the raw pause lists.

    ``discard_fraction`` drops the leading part of every run, the
    simulator's analogue of the paper discarding the first 5 of 30
    minutes to exclude JVM loading, JIT compilation and — for ROLP —
    the profile learning phase (the warmup itself is Figure 10's
    subject).  The fraction is larger than the paper's 17% because the
    scaled runs spend proportionally longer warming up.
    """
    studies: List[PauseStudy] = []
    for name in workload_names or sorted(BIG_WORKLOADS):
        study = PauseStudy(workload=name)
        for collector in collectors:
            telemetry = (
                session.for_run("%s/%s" % (name, collector)) if session else None
            )
            result, _ = run_big_workload(name, collector, telemetry=telemetry)
            cutoff_ns = result.elapsed_ms * 1e6 * discard_fraction
            study.pauses_ms[collector] = [
                p.duration_ms for p in result.pauses if p.start_ns >= cutoff_ns
            ]
        studies.append(study)
    return studies


def render_figure8(studies: Sequence[PauseStudy]) -> str:
    parts = []
    for study in studies:
        parts.append(
            render_percentile_series(
                study.percentiles(), title="[Figure 8] %s pause percentiles (ms)" % study.workload
            )
        )
    return "\n\n".join(parts)


def render_figure9(studies: Sequence[PauseStudy]) -> str:
    parts = []
    for study in studies:
        parts.append(
            render_histogram_series(
                study.histograms(),
                title="[Figure 9] %s pauses per duration interval (ms)" % study.workload,
            )
        )
    return "\n\n".join(parts)


# --------------------------------------------------------------------------- Figure 10

@dataclass
class WarmupStudy:
    """Figure 10: warmup pause timeline + normalized throughput/memory."""

    #: (pause start in s, duration in ms) for the ROLP run
    rolp_timeline: List[Tuple[float, float]]
    #: collector -> throughput normalized to G1
    throughput_norm: Dict[str, float]
    #: collector -> max memory normalized to G1
    memory_norm: Dict[str, float]
    #: ROLP advice-change counts per inference pass (learning curve)
    decision_changes: List[int]


def figure10(
    workload_name: str = "cassandra-wi",
    collectors: Sequence[str] = ("cms", "zgc", "ng2c", "rolp"),
    session=None,
) -> WarmupStudy:
    operations = scaled_ops(WARMUP_OPS)

    g1_result, _ = run_big_workload(
        workload_name,
        "g1",
        operations=operations,
        telemetry=session.for_run("fig10/%s/g1" % workload_name) if session else None,
    )
    g1_throughput = g1_result.throughput_ops_s
    g1_memory = g1_result.max_memory_bytes

    throughput_norm = {"g1": 1.0}
    memory_norm = {"g1": 1.0}
    rolp_timeline: List[Tuple[float, float]] = []
    decision_changes: List[int] = []
    for collector in collectors:
        result, workload = run_big_workload(
            workload_name,
            collector,
            operations=operations,
            telemetry=session.for_run("fig10/%s/%s" % (workload_name, collector))
            if session
            else None,
        )
        throughput_norm[collector] = result.throughput_ops_s / g1_throughput
        memory_norm[collector] = result.max_memory_bytes / g1_memory
        if collector == "rolp":
            rolp_timeline = result.pause_timeline()
            decision_changes = list(workload.vm.profiler.decision_change_log)
    return WarmupStudy(
        rolp_timeline=rolp_timeline,
        throughput_norm=throughput_norm,
        memory_norm=memory_norm,
        decision_changes=decision_changes,
    )


def render_figure10(study: WarmupStudy, buckets: int = 12) -> str:
    parts = ["[Figure 10] Cassandra WI warmup pause times (ROLP)"]
    if study.rolp_timeline:
        end = study.rolp_timeline[-1][0] or 1.0
        width = end / buckets
        rows = []
        for i in range(buckets):
            window = [
                d for (t, d) in study.rolp_timeline if i * width <= t < (i + 1) * width
            ]
            rows.append(
                [
                    "%.2f-%.2fs" % (i * width, (i + 1) * width),
                    len(window),
                    "%.2f" % (sum(window) / len(window)) if window else "-",
                    "%.2f" % max(window) if window else "-",
                ]
            )
        parts.append(render_table(["window", "pauses", "avg ms", "max ms"], rows))
    parts.append("decision changes per inference pass: %s" % study.decision_changes)
    collectors = sorted(study.throughput_norm)
    parts.append(
        render_table(
            ["metric"] + collectors,
            [
                ["throughput/G1"]
                + ["%.3f" % study.throughput_norm[c] for c in collectors],
                ["max-memory/G1"]
                + ["%.3f" % study.memory_norm[c] for c in collectors],
            ],
        )
    )
    return "\n".join(parts)

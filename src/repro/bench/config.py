"""Benchmark sizing.

Every experiment honours ``ROLP_BENCH_SCALE`` (default 1.0): operation
counts are multiplied by it, so ``ROLP_BENCH_SCALE=0.2 pytest
benchmarks/`` gives a fast smoke pass and ``=3`` a higher-fidelity run.
The paper's runs are 30 minutes each on a Xeon; the simulator defaults
reproduce the *shapes* in minutes on a laptop.
"""

from __future__ import annotations

import os


def bench_scale() -> float:
    try:
        scale = float(os.environ.get("ROLP_BENCH_SCALE", "1"))
    except ValueError:
        scale = 1.0
    return max(scale, 0.01)


def scaled_ops(base_ops: int) -> int:
    """Apply the global scale with a floor that keeps at least one
    inference pass in every run."""
    return max(2_000, int(base_ops * bench_scale()))


#: default operation counts per experiment (before scaling)
CASSANDRA_OPS = 150_000
LUCENE_OPS = 120_000
GRAPHCHI_OPS = 60_000
DACAPO_PROFILE_OPS = 20_000   # Table 2 (needs inference passes)
DACAPO_OVERHEAD_OPS = 5_000   # Figure 6 (overhead measurement only)
WARMUP_OPS = 240_000          # Figure 10 timeline

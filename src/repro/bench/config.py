"""Benchmark sizing.

Every experiment honours ``ROLP_BENCH_SCALE`` (default 1.0): operation
counts are multiplied by it, so ``ROLP_BENCH_SCALE=0.2 pytest
benchmarks/`` gives a fast smoke pass and ``=3`` a higher-fidelity run.
The paper's runs are 30 minutes each on a Xeon; the simulator defaults
reproduce the *shapes* in minutes on a laptop.
"""

from __future__ import annotations

import os
import warnings

#: smallest scale that still produces meaningful runs (see scaled_ops)
MIN_SCALE = 0.01

#: raw ROLP_BENCH_SCALE values already warned about (warn once per value)
_warned_values = set()


def _warn_once(raw: str, message: str) -> None:
    if raw not in _warned_values:
        _warned_values.add(raw)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def bench_scale() -> float:
    """The global benchmark scale from ``ROLP_BENCH_SCALE``.

    Invalid values (non-numeric, zero, negative, NaN) fall back to 1.0
    with a warning — silently running a full-scale grid because of a
    typo like ``ROLP_BENCH_SCALE=O.2`` wastes hours.  Sub-floor values
    clamp to ``MIN_SCALE``, also with a warning.  Each offending value
    warns once per process.
    """
    raw = os.environ.get("ROLP_BENCH_SCALE", "1")
    try:
        scale = float(raw)
    except ValueError:
        _warn_once(
            raw,
            "ROLP_BENCH_SCALE=%r is not a number; running at scale 1.0" % raw,
        )
        return 1.0
    if not scale > 0:  # catches 0, negatives and NaN
        _warn_once(
            raw,
            "ROLP_BENCH_SCALE=%r must be positive; running at scale 1.0" % raw,
        )
        return 1.0
    if scale < MIN_SCALE:
        _warn_once(
            raw,
            "ROLP_BENCH_SCALE=%r is below the %g floor; clamping" % (raw, MIN_SCALE),
        )
        return MIN_SCALE
    return scale


def scaled_ops(base_ops: int) -> int:
    """Apply the global scale with a floor that keeps at least one
    inference pass in every run."""
    return max(2_000, int(base_ops * bench_scale()))


#: default operation counts per experiment (before scaling)
CASSANDRA_OPS = 150_000
LUCENE_OPS = 120_000
GRAPHCHI_OPS = 60_000
DACAPO_PROFILE_OPS = 20_000   # Table 2 (needs inference passes)
DACAPO_OVERHEAD_OPS = 5_000   # Figure 6 (overhead measurement only)
WARMUP_OPS = 240_000          # Figure 10 timeline

"""The six large-scale workloads of the paper's evaluation (Table 1),
constructable by name, plus shared run helpers for the benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.workloads.adversarial import make_adversarial
from repro.workloads.base import RunResult, Workload, run_workload
from repro.workloads.graph import GraphChiWorkload
from repro.workloads.kvstore import CassandraWorkload
from repro.workloads.search import LuceneWorkload
from repro.workloads.traced import make_traced_sample
from repro.bench.config import CASSANDRA_OPS, GRAPHCHI_OPS, LUCENE_OPS, scaled_ops

#: constructors for the paper's six large-scale workloads; every
#: constructor accepts the base Workload kwargs (notably ``seed``)
BIG_WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "cassandra-wi": CassandraWorkload.write_intensive,
    "cassandra-rw": CassandraWorkload.read_write,
    "cassandra-ri": CassandraWorkload.read_intensive,
    "lucene": LuceneWorkload,
    "graphchi-cc": lambda **kwargs: GraphChiWorkload("cc", **kwargs),
    "graphchi-pr": lambda **kwargs: GraphChiWorkload("pr", **kwargs),
}

#: per-workload default operation counts (pre-scaling).  The read-heavy
#: Cassandra mixes fill the memtable proportionally slower, so their
#: profile (and hence their run) needs proportionally more operations to
#: get past warmup — mirroring the paper's fixed 30-minute wall-clock
#: runs, which give every mix the same amount of GC activity.
BIG_WORKLOAD_OPS: Dict[str, int] = {
    "cassandra-wi": CASSANDRA_OPS,
    "cassandra-rw": int(CASSANDRA_OPS * 1.4),
    "cassandra-ri": int(CASSANDRA_OPS * 2.0),
    "lucene": LUCENE_OPS,
    "graphchi-cc": GRAPHCHI_OPS,
    "graphchi-pr": GRAPHCHI_OPS,
}

#: additional registered workloads (adversarial/traced).  Deliberately a
#: SEPARATE table: default experiment grids iterate
#: ``sorted(BIG_WORKLOADS)`` and their goldens must not change when new
#: scenarios are registered; extras are opt-in via ``--workloads`` and
#: the fuzz machinery.
EXTRA_WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "adversarial": lambda **kwargs: make_adversarial(**kwargs),
    "traced-sample": lambda **kwargs: make_traced_sample(**kwargs),
}

#: default (pre-scaling) operation counts for the extras
EXTRA_WORKLOAD_OPS: Dict[str, int] = {
    "adversarial": 20_000,
    "traced-sample": 30_000,
}


def register_workload(
    name: str, constructor: Callable[..., Workload], default_ops: int
) -> None:
    """Register an extra (non-paper) workload.

    It becomes constructable through :func:`make_big_workload` and
    runnable through the bench layers, without joining the default
    experiment grids.
    """
    if name in BIG_WORKLOADS or name in EXTRA_WORKLOADS:
        raise ValueError("workload %r already registered" % name)
    EXTRA_WORKLOADS[name] = constructor
    EXTRA_WORKLOAD_OPS[name] = default_ops


def all_workload_names():
    """Every constructable workload name (paper six + extras), sorted."""
    return sorted(set(BIG_WORKLOADS) | set(EXTRA_WORKLOADS))


def make_big_workload(name: str, seed: Optional[int] = None) -> Workload:
    """Construct a workload by name; ``seed=None`` keeps each
    workload's own default (the experiment runner passes per-cell
    derived seeds)."""
    constructor = BIG_WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if constructor is None:
        raise KeyError(
            "unknown workload %r (have: %s)"
            % (name, ", ".join(all_workload_names()))
        )
    return constructor() if seed is None else constructor(seed=seed)


def big_workload_ops(name: str) -> int:
    """The scaled default operation count for a registered workload."""
    ops = BIG_WORKLOAD_OPS.get(name)
    if ops is None:
        ops = EXTRA_WORKLOAD_OPS[name]
    return scaled_ops(ops)


def run_big_workload(
    name: str,
    collector: str,
    operations: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs,
):
    """Run one of the six workloads; returns ``(RunResult, Workload)``."""
    workload = make_big_workload(name, seed=seed)
    ops = operations if operations is not None else big_workload_ops(name)
    result = run_workload(workload, collector, operations=ops, **kwargs)
    return result, workload

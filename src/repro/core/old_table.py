"""The Object Lifetime Distribution (OLD) table.

The global hashtable at the heart of ROLP (paper Figure 1): one row per
allocation context, sixteen columns — one per possible object age
(HotSpot's 4 age bits).  Application threads increment column 0 on each
profiled allocation; GC worker threads move survivors from column
``age`` to column ``age+1``.

Faithfully modelled details:

* **Pre-sized rows** (Section 7.5): the table starts with one row per
  possible allocation-site identifier (2^16 entries, ~4 MB); whenever a
  context conflict is found for a site, the table grows by another 2^16
  entries to accommodate that site's stack-state values (+4 MB each).
  The Python dict is sparse, but the *memory accounting* follows the
  paper's sizing formula so Table 1/2's OLD column can be reproduced.
* **Unsynchronized mutator updates** (Section 7.6): application threads
  race on the global table without synchronization; a (tiny,
  configurable, deterministic) fraction of increments is lost.
* **Per-GC-worker private tables** (Section 7.6): GC threads record
  survival updates into private tables merged into the global one at
  the end of the collection.
* **Validity filtering**: survival updates are discarded for
  biased-locked objects and for contexts that do not match any table
  entry (e.g. stale bias thread pointers).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Set, Tuple

from repro.fastpath import fast_paths_enabled
from repro.heap.header import MAX_AGE, NUM_AGES
from repro.core.context import context_site

#: bytes per table cell (a 32-bit counter, per the paper's 4-byte math)
CELL_BYTES = 4
#: rows added per sizing step (one per possible site id / stack state)
ROWS_PER_STEP = 1 << 16
#: bytes per sizing step: 4 B * 16 columns * 2^16 rows = 4 MiB
STEP_BYTES = CELL_BYTES * NUM_AGES * ROWS_PER_STEP


class WorkerTable:
    """A GC worker thread's private survival-update buffer."""

    __slots__ = ("updates",)

    def __init__(self) -> None:
        #: (context, from_age) -> count of survivors observed
        self.updates: Dict[Tuple[int, int], int] = {}

    def record_survival(self, context: int, age: int) -> None:
        key = (context, age)
        self.updates[key] = self.updates.get(key, 0) + 1

    def clear(self) -> None:
        self.updates.clear()

    def __len__(self) -> int:
        return len(self.updates)


class OldTable:
    """The global Object Lifetime Distribution table."""

    def __init__(
        self,
        increment_loss_probability: float = 0.0,
        seed: int = 0x01D,
    ) -> None:
        if not 0.0 <= increment_loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self._rows: Dict[int, List[int]] = {}
        #: allocation-site ids with a table row family (registered when
        #: the owning method is instrumented)
        self.registered_sites: Set[int] = set()
        #: sites whose row family was expanded after a conflict
        self.expanded_sites: Set[int] = set()
        self.increment_loss_probability = increment_loss_probability
        self._rng = random.Random(seed)
        self.lost_increments = 0
        self.discarded_survivals = 0
        #: construction-time snapshot of the process fast-path switch
        self.fast_paths = fast_paths_enabled()

    # -- registration -------------------------------------------------------------

    def register_site(self, site_id: int) -> None:
        """A jitted allocation site now has a row family in the table."""
        if site_id:
            self.registered_sites.add(site_id)

    def expand_for_conflict(self, site_id: int) -> None:
        """Grow the table to fit all stack-state rows of a conflicted
        site (Section 7.5's +2^16-entries step)."""
        if site_id in self.registered_sites:
            self.expanded_sites.add(site_id)

    # -- validity -----------------------------------------------------------------

    def is_known_context(self, context: int) -> bool:
        """Whether a header context matches a table entry.

        Contexts whose site id was never registered (stale biased-lock
        thread pointers, cold-code zeros) are rejected; this is the
        paper's discard-if-not-in-table rule.
        """
        if context == 0:
            return False
        return context_site(context) in self.registered_sites

    # -- mutator updates --------------------------------------------------------------

    def increment_alloc(self, context: int) -> bool:
        """Count one allocation (column 0) for ``context``.

        Returns False when the increment was lost to the unsynchronized
        race (modelled probabilistically, deterministic seed).
        """
        if not self.is_known_context(context):
            return False
        if (
            self.increment_loss_probability
            and self._rng.random() < self.increment_loss_probability
        ):
            self.lost_increments += 1
            return False
        row = self._row(context)
        row[0] += 1
        return True

    # -- GC updates ---------------------------------------------------------------------

    def apply_survival(self, context: int, age: int) -> None:
        """Move one object from column ``age`` to ``age + 1``.

        Saturated objects (age 15) no longer move.  The decrement floors
        at zero: an allocation whose column-0 increment was lost can
        still produce a survival record.
        """
        if age >= MAX_AGE:
            return
        row = self._row(context)
        if row[age] > 0:
            row[age] -= 1
        row[age + 1] += 1

    def merge_worker(self, worker: WorkerTable) -> None:
        """Fold a GC worker's private table into the global one (done at
        the end of each collection, under the safepoint).

        The fast path applies each ``(context, age)`` bucket's ``count``
        in one batched update.  Equivalence with ``count`` sequential
        :meth:`apply_survival` calls: within one bucket nothing else
        touches ``row[age]`` (the destination column is ``age + 1``), so
        the sequential decrements remove exactly ``min(count, row[age])``
        and the increments add exactly ``count``; buckets are processed
        in the same dict order either way.
        """
        if self.fast_paths:
            rows = self._rows
            for (context, age), count in worker.updates.items():
                if age >= MAX_AGE:
                    continue
                row = rows.get(context)
                if row is None:
                    rows[context] = row = [0] * NUM_AGES
                current = row[age]
                row[age] = current - count if count <= current else 0
                row[age + 1] += count
            worker.clear()
            return
        for (context, age), count in worker.updates.items():
            for _ in range(count):
                self.apply_survival(context, age)
        worker.clear()

    # -- reading ----------------------------------------------------------------------------

    def _row(self, context: int) -> List[int]:
        row = self._rows.get(context)
        if row is None:
            row = [0] * NUM_AGES
            self._rows[context] = row
        return row

    def curve(self, context: int) -> List[int]:
        """The age curve for one context (a copy; zeros if absent)."""
        return list(self._rows.get(context, [0] * NUM_AGES))

    def contexts(self) -> Iterator[int]:
        return iter(self._rows.keys())

    def contexts_for_site(self, site_id: int) -> List[int]:
        return [c for c in self._rows if context_site(c) == site_id]

    def total_objects(self, context: int) -> int:
        return sum(self._rows.get(context, ()))

    def __len__(self) -> int:
        return len(self._rows)

    # -- freshness ----------------------------------------------------------------------------

    def clear(self) -> None:
        """Drop all counts (done after each inference pass, Section 4),
        keeping registrations and sizing."""
        self._rows.clear()

    # -- memory accounting -------------------------------------------------------------------------

    @property
    def conflicts_expanded(self) -> int:
        return len(self.expanded_sites)

    def memory_bytes(self) -> int:
        """Paper's sizing: 4 MB base + 4 MB per conflict-expanded site.

        (Formula from Section 7.5: 2^16 * (1 + N) rows of 16 4-byte
        cells, N = number of conflicts.)
        """
        return STEP_BYTES * (1 + self.conflicts_expanded)

"""Object lifetime inference (paper Section 4).

Every 16 GC cycles (the maximum object age in HotSpot's 4 age bits),
ROLP analyzes each allocation context's age curve from the OLD table.
The curve — number of objects per age — is typically triangular: it
rises to the age at which most of the context's objects die and falls
after it.  The peak age is the estimated lifetime.

A curve with *multiple* significant triangular peaks means objects
allocated through that context live for distinctly different spans —
an allocation-context conflict (the same allocation site reached via
different call paths).  Conflicts are handed to the resolver
(:mod:`repro.core.conflicts`), which enables thread-stack-state tracking
on call sites until the paths are disambiguated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.heap.header import NUM_AGES
from repro.core.context import context_site
from repro.core.old_table import OldTable


@dataclass(frozen=True)
class CurveAnalysis:
    """Result of analyzing one context's age curve."""

    context: int
    total: int
    peaks: tuple
    estimated_age: int
    is_conflict: bool


@dataclass
class InferenceResult:
    """One inference pass over the whole OLD table."""

    gc_number: int
    analyses: Dict[int, CurveAnalysis] = field(default_factory=dict)
    #: allocation-site ids showing multi-peak (conflicting) curves
    conflicted_sites: Set[int] = field(default_factory=set)

    @property
    def contexts_analyzed(self) -> int:
        return len(self.analyses)


def find_peaks(curve: List[int], significance: float = 0.05, min_count: int = 8) -> List[int]:
    """Indices of significant local maxima in a 16-column age curve.

    A peak must be a local maximum (plateaus count once, at their first
    index) and carry at least ``significance`` of the curve's maximum
    value and at least ``min_count`` objects — noise does not make a
    triangle.
    """
    top = max(curve) if curve else 0
    if top < min_count:
        return []
    threshold = max(min_count, significance * top)
    peaks: List[int] = []
    n = len(curve)
    i = 0
    while i < n:
        value = curve[i]
        if value < threshold:
            i += 1
            continue
        # extend over a plateau
        j = i
        while j + 1 < n and curve[j + 1] == value:
            j += 1
        left = curve[i - 1] if i > 0 else 0
        right = curve[j + 1] if j + 1 < n else 0
        if value > left and value > right:
            peaks.append(i)
        i = j + 1
    return peaks


def distinct_triangles(curve: List[int], peaks: List[int], valley_ratio: float = 0.35) -> List[int]:
    """Filter peaks down to genuinely separate triangles.

    Two adjacent peaks belong to different triangles only if the valley
    between them drops below ``valley_ratio`` of the smaller peak;
    otherwise they are one (noisy) shape and the taller wins.
    """
    if len(peaks) <= 1:
        return list(peaks)
    kept = [peaks[0]]
    for peak in peaks[1:]:
        previous = kept[-1]
        valley = min(curve[previous:peak + 1])
        smaller = min(curve[previous], curve[peak])
        if valley <= valley_ratio * smaller:
            kept.append(peak)
        elif curve[peak] > curve[previous]:
            kept[-1] = peak
    return kept


def analyze_curve(
    context: int,
    curve: List[int],
    significance: float = 0.05,
    min_count: int = 8,
    valley_ratio: float = 0.35,
    inflow_period: int = NUM_AGES,
) -> CurveAnalysis:
    """Full analysis of one context's curve.

    Column 0 gets an *inflow correction* before peak detection: right
    after the Nth GC of an inference window, column 0 necessarily holds
    roughly one inter-GC interval's worth of freshly allocated objects
    that simply have not been exposed to a collection yet.  For a
    steady allocation rate that is ``total / inflow_period`` objects —
    background inflow, not a die-young cohort — and without the
    correction every middle-lived context would grow a spurious age-0
    peak and be misread as a conflict.
    """
    total = sum(curve)
    adjusted = list(curve)
    if adjusted and inflow_period > 0:
        adjusted[0] = max(0, adjusted[0] - total // inflow_period)
    peaks = distinct_triangles(
        adjusted, find_peaks(adjusted, significance, min_count), valley_ratio
    )
    if not peaks:
        estimated = 0
    else:
        # the age at which most objects die
        estimated = max(peaks, key=lambda i: adjusted[i])
    return CurveAnalysis(
        context=context,
        total=total,
        peaks=tuple(peaks),
        estimated_age=estimated,
        is_conflict=len(peaks) >= 2,
    )


def estimate_drift(previous: InferenceResult, current: InferenceResult) -> float:
    """Mean |Δ estimated age| over contexts analyzed in both passes.

    The survivor-prediction-error signal the fuzzer maximizes: a stable
    demography converges (drift → 0); oscillating lifetimes or
    unresolved conflicts keep the estimates thrashing.  Contexts seen in
    only one pass carry no comparable estimate and are skipped; 0.0 when
    no context is shared.
    """
    shared = previous.analyses.keys() & current.analyses.keys()
    if not shared:
        return 0.0
    total = sum(
        abs(
            current.analyses[context].estimated_age
            - previous.analyses[context].estimated_age
        )
        for context in shared
    )
    return total / len(shared)


class InferenceEngine:
    """Periodic lifetime inference over the OLD table.

    Parameters
    ----------
    period_gcs:
        GC cycles between inference passes (16 — HotSpot's max age).
    min_samples:
        Minimum objects a context must have accumulated for its curve to
        be trusted at all.
    """

    def __init__(
        self,
        period_gcs: int = NUM_AGES,
        min_samples: int = 32,
        significance: float = 0.05,
        min_count: int = 8,
        valley_ratio: float = 0.35,
    ) -> None:
        self.period_gcs = period_gcs
        self.min_samples = min_samples
        self.significance = significance
        self.min_count = min_count
        self.valley_ratio = valley_ratio
        self.passes_run = 0

    def due(self, gc_number: int) -> bool:
        return gc_number > 0 and gc_number % self.period_gcs == 0

    def run(self, table: OldTable, gc_number: int, pretenured=None) -> InferenceResult:
        """Analyze every context, then clear the table for freshness.

        ``pretenured`` is an optional predicate marking contexts whose
        allocations already go to a dynamic generation.  Those objects
        bypass young collections entirely, so their column 0 piles up
        with no survival flow — a structural artifact, not a die-young
        cohort.  For such contexts column 0 is ignored and conflicts
        are never flagged: only a genuine lifetime *increase* (survival
        mass at higher ages, Section 6) can still surface; decreases
        arrive through the fragmentation path.
        """
        result = InferenceResult(gc_number=gc_number)
        for context in list(table.contexts()):
            curve = table.curve(context)
            if sum(curve) < self.min_samples:
                continue
            is_pretenured = bool(pretenured and pretenured(context))
            if is_pretenured:
                curve[0] = 0
                if sum(curve) < self.min_samples:
                    continue
            analysis = analyze_curve(
                context,
                curve,
                self.significance,
                self.min_count,
                self.valley_ratio,
                inflow_period=self.period_gcs,
            )
            if is_pretenured and analysis.is_conflict:
                analysis = CurveAnalysis(
                    context=analysis.context,
                    total=analysis.total,
                    peaks=analysis.peaks,
                    estimated_age=max(analysis.peaks),
                    is_conflict=False,
                )
            result.analyses[context] = analysis
            if analysis.is_conflict:
                result.conflicted_sites.add(context_site(context))
        table.clear()
        self.passes_run += 1
        return result

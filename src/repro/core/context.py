"""Allocation-context encoding.

An allocation context is the 32-bit tuple the paper defines in
Section 3: the 16-bit allocation-site identifier (method + bytecode
index, assigned at JIT time) in the high half, and the allocating
thread's 16-bit stack state in the low half.

The bit layout lives in :mod:`repro.heap.header` (it must, because the
context is stored in the object header); this module re-exports the
operations under profiling-centric names and adds the validity checks
ROLP applies before trusting a context read back from a header.
"""

from __future__ import annotations

from repro.heap.header import (
    MASK_16,
    MASK_32,
    context_site,
    context_stack_state,
    pack_context,
)

__all__ = [
    "MASK_16",
    "MASK_32",
    "context_site",
    "context_stack_state",
    "encode",
    "is_plausible",
    "pack_context",
    "site_base_context",
]

#: encode(site_id, stack_state) -> 32-bit context
encode = pack_context


def site_base_context(site_id: int) -> int:
    """The context of an allocation at ``site_id`` with zero stack state
    — the only contexts that exist before any call-site tracking is
    enabled."""
    return pack_context(site_id, 0)


def is_plausible(context: int) -> bool:
    """Cheap structural sanity check on a value claiming to be a context.

    A context is a *32-bit* quantity (the upper header half): anything
    wider cannot have come from :func:`encode` and is rejected outright
    rather than silently aliasing the context whose low 32 bits it
    shares.  Within 32 bits, a site id of 0 can never have been
    installed by the profiler (0 is reserved for "unprofiled").
    Negative values are equally implausible.
    """
    return 0 < context <= MASK_32 and context & (MASK_16 << 16) != 0

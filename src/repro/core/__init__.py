"""ROLP — the paper's primary contribution.

The public surface is :class:`RolpProfiler` plus the pieces it is built
from, each individually usable and tested: the OLD table, the inference
engine, the conflict resolver, the advice table, the package filters and
the survivor-tracking controller.
"""

from repro.core.advice import AdviceTable
from repro.core.conflicts import ConflictResolver, worst_case_resolution_ns
from repro.core.context import (
    context_site,
    context_stack_state,
    encode,
    is_plausible,
    site_base_context,
)
from repro.core.filters import PackageFilter
from repro.core.inference import (
    CurveAnalysis,
    InferenceEngine,
    InferenceResult,
    analyze_curve,
    distinct_triangles,
    find_peaks,
)
from repro.core.offline import OfflineAdviceProfiler, OfflineProfile
from repro.core.old_table import OldTable, WorkerTable
from repro.core.profiler import RolpConfig, RolpProfiler
from repro.core.survivor_tracking import SurvivorTrackingController

__all__ = [
    "AdviceTable",
    "ConflictResolver",
    "CurveAnalysis",
    "InferenceEngine",
    "InferenceResult",
    "OfflineAdviceProfiler",
    "OfflineProfile",
    "OldTable",
    "PackageFilter",
    "RolpConfig",
    "RolpProfiler",
    "SurvivorTrackingController",
    "WorkerTable",
    "analyze_curve",
    "context_site",
    "context_stack_state",
    "distinct_triangles",
    "encode",
    "find_peaks",
    "is_plausible",
    "site_base_context",
    "worst_case_resolution_ns",
]

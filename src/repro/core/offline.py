"""POLM2-style offline profiling (the paper's offline baseline).

POLM2 (Bruno & Ferreira, Middleware'17) profiles an application
*offline* and rewrites allocation sites with static pretenuring
decisions.  The paper's Discussion (Section 10) notes NG2C annotations,
POLM2 offline profiles and ROLP online profiles all target the same
collector and can be combined; reproducing POLM2 makes the trade-offs
measurable here:

* **capture** — run the application once under ROLP and export each
  *allocation site's* learned generation as an :class:`OfflineProfile`
  (keyed by method + bytecode index, so it survives across runs);
* **apply** — run again with :class:`OfflineAdviceProfiler`: the static
  per-site decisions are installed at JIT time with *zero* runtime
  profiling cost and zero warmup...
* **...but** a site reached through call paths with different lifetimes
  gets one decision for all paths (the profile is site-keyed, not
  context-keyed), and a workload shift invalidates the profile — the
  two weaknesses that motivate ROLP's online, context-aware design.

Conflicted sites are exported with their *most conservative* (lowest)
generation so the static profile never over-tenures a short-lived path.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.heap.object_model import SimObject
from repro.runtime.hooks import NullProfiler
from repro.runtime.method import AllocSite, Method
from repro.runtime.thread import SimThread
from repro.core.context import context_site, encode
from repro.core.profiler import RolpProfiler

#: profile key: (fully qualified method name, bytecode index)
SiteKey = Tuple[str, int]


class OfflineProfile:
    """A static allocation-site → generation profile."""

    def __init__(self, decisions: Optional[Dict[SiteKey, int]] = None) -> None:
        self.decisions: Dict[SiteKey, int] = dict(decisions or {})

    # -- capture ------------------------------------------------------------

    @classmethod
    def capture(cls, profiler: RolpProfiler, vm) -> "OfflineProfile":
        """Export a finished ROLP run's advice as a static profile."""
        by_site_id: Dict[int, int] = {}
        for context, gen in profiler.advice.items():
            site_id = context_site(context)
            current = by_site_id.get(site_id)
            # Site-keyed: different call paths collapse; keep the most
            # conservative decision (POLM2 cannot split paths).
            by_site_id[site_id] = gen if current is None else min(current, gen)

        decisions: Dict[SiteKey, int] = {}
        for site in vm.jit.instrumented_alloc_sites:
            gen = by_site_id.get(site.site_id)
            if gen:
                decisions[(site.method.qualified_name, site.bci)] = gen
        return cls(decisions)

    # -- (de)serialization --------------------------------------------------------

    def dumps(self) -> str:
        return json.dumps(
            [[method, bci, gen] for (method, bci), gen in sorted(self.decisions.items())]
        )

    @classmethod
    def loads(cls, text: str) -> "OfflineProfile":
        return cls({(method, bci): gen for method, bci, gen in json.loads(text)})

    def __len__(self) -> int:
        return len(self.decisions)

    def generation_for_site(self, method_name: str, bci: int) -> int:
        return self.decisions.get((method_name, bci), 0)


class OfflineAdviceProfiler(NullProfiler):
    """Applies a static :class:`OfflineProfile` with no runtime cost.

    Implements just enough of the profiler interface for NG2C to
    consume the advice: contexts are site-only (stack state 0 — offline
    profiles cannot see call paths), no table is maintained, no
    survivor processing happens, and the mutator pays nothing.
    """

    def __init__(self, profile: OfflineProfile) -> None:
        self.profile = profile
        #: site_id -> generation, resolved as methods are compiled
        self._by_site_id: Dict[int, int] = {}
        self.sites_matched = 0
        self.sites_unmatched = 0

    # -- JIT hooks: resolve profile keys to this run's site ids ----------------

    def should_instrument(self, method: Method) -> bool:
        # Sites still need ids so allocations carry a lookup key, but
        # only methods the profile mentions are worth instrumenting.
        return any(
            key[0] == method.qualified_name for key in self.profile.decisions
        )

    def on_method_compiled(self, method: Method) -> None:
        for site in method.alloc_sites.values():
            if not site.site_id:
                continue
            gen = self.profile.generation_for_site(method.qualified_name, site.bci)
            if gen:
                self._by_site_id[site.site_id] = gen
                self.sites_matched += 1
            else:
                self.sites_unmatched += 1

    # -- mutator hooks: free advice, no profiling ------------------------------------

    def allocation_context(self, thread: SimThread, site: AllocSite) -> int:
        if site.site_id in self._by_site_id:
            return encode(site.site_id, 0)
        # Late-compiled sites: resolve lazily.
        gen = self.profile.generation_for_site(site.method.qualified_name, site.bci)
        if gen:
            self._by_site_id[site.site_id] = gen
            self.sites_matched += 1
            return encode(site.site_id, 0)
        return 0

    def sample_allocation(self, site: AllocSite) -> bool:
        return False  # never pay for table updates

    def allocation_advice(self, context: int) -> int:
        return self._by_site_id.get(context_site(context), 0)

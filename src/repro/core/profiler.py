"""The ROLP profiler: orchestration of all profiling machinery.

:class:`RolpProfiler` implements the runtime's profiler hook interface
(:class:`repro.runtime.hooks.NullProfiler`) and wires together:

* the allocation-context encoder (site id + thread stack state),
* the Object Lifetime Distribution table with per-GC-worker buffers,
* the periodic (every 16 GC cycles) lifetime inference,
* the conflict resolver's call-site tracking search,
* the advice table feeding the NG2C pretenuring collector,
* the package filters bounding instrumentation,
* the survivor-tracking on/off controller,
* the fragmentation-driven lifetime decrement loop.

Construction mirrors the paper's deployment model: build a profiler,
hand it to a :class:`repro.runtime.vm.JavaVM` running an NG2C collector
in ``use_profiler_advice`` mode, and run the application — no source
changes, no annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fastpath import fast_paths_enabled
from repro.heap.header import (
    AGE_MASK,
    AGE_SHIFT,
    BIASED_MASK,
    CONTEXT_SHIFT,
    MASK_16,
    MASK_32,
    NUM_AGES,
)
from repro.heap.object_model import SimObject
from repro.runtime.hooks import NullProfiler
from repro.runtime.method import AllocSite, CallSite, Method
from repro.runtime.thread import SimThread
from repro.core.advice import AdviceTable
from repro.core.conflicts import ConflictResolver
from repro.core.context import context_site, encode
from repro.core.filters import PackageFilter
from repro.core.inference import InferenceEngine, InferenceResult, estimate_drift
from repro.core.old_table import OldTable, WorkerTable
from repro.core.survivor_tracking import SurvivorTrackingController
from repro.telemetry import NULL_TELEMETRY

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover - degraded environments
    _np = None


@dataclass
class RolpConfig:
    """Tunables, defaulting to the paper's recommended settings."""

    #: package filter bounding instrumentation (Section 7.3)
    package_filter: PackageFilter = field(default_factory=PackageFilter.accept_all)
    #: GC cycles between inference passes (16 = HotSpot's max age)
    inference_period_gcs: int = NUM_AGES
    #: fraction of jitted call sites enabled per conflict attempt (≤20%)
    conflict_p_fraction: float = 0.20
    #: minimum estimated age worth pretenuring
    pretenure_min_age: int = 2
    #: minimum samples before a context's curve is trusted
    min_samples: int = 32
    #: probability one unsynchronized OLD increment is lost (Section 7.6)
    increment_loss_probability: float = 0.0005
    #: number of GC worker threads (private survival tables)
    gc_workers: int = 4
    #: profile every Nth allocation per site (1 = every allocation).
    #: The sampling extension the paper names in Section 8.5: unsampled
    #: objects still receive pretenuring advice but contribute no
    #: lifetime statistics, trading signal for mutator throughput.
    allocation_sample_rate: int = 1
    #: survivor-tracking regression threshold (Section 7.4)
    pause_regression_threshold: float = 0.10
    #: consecutive stable inference passes before survivor tracking is
    #: shut down
    stable_passes_required: int = 3
    #: allow dynamic survivor-tracking shutdown at all
    dynamic_survivor_tracking: bool = True
    #: fragmentation blame (dead bytes) above which a context's
    #: estimate is decremented (a quarter region by default)
    fragmentation_blame_bytes: int = 256 << 10

    # -- mutator profiling-code costs (simulated ns) -------------------------
    #: per profiled allocation: context pack + table increment + header
    alloc_profile_ns: float = 18.0
    #: per call-site fast-branch check (test + je on a cached value)
    call_fast_ns: float = 1.2
    #: per call-site slow add/sub of the TLS stack state
    call_slow_ns: float = 6.0


class RolpProfiler(NullProfiler):
    """Runtime object lifetime profiler (the paper's contribution)."""

    def __init__(self, config: Optional[RolpConfig] = None) -> None:
        self.config = config or RolpConfig()
        cfg = self.config
        self.old_table = OldTable(
            increment_loss_probability=cfg.increment_loss_probability
        )
        self.inference = InferenceEngine(
            period_gcs=cfg.inference_period_gcs,
            min_samples=cfg.min_samples,
        )
        self.resolver = ConflictResolver(p_fraction=cfg.conflict_p_fraction)
        self.advice = AdviceTable(pretenure_min_age=cfg.pretenure_min_age)
        self.survivor_controller = SurvivorTrackingController(
            regression_threshold=cfg.pause_regression_threshold,
            stable_passes_required=cfg.stable_passes_required,
        )
        self.workers: List[WorkerTable] = [
            WorkerTable() for _ in range(cfg.gc_workers)
        ]
        #: every call site in instrumented (jitted) code, the resolver's
        #: sampling universe
        self.jitted_call_sites: List[CallSite] = []
        self.instrumented_methods: List[Method] = []
        #: latest inference result (observability / tests)
        self.last_inference: Optional[InferenceResult] = None
        self.inference_history: List[InferenceResult] = []
        #: contexts whose advice changed, per inference pass (warmup curve)
        self.decision_change_log: List[int] = []
        #: per-pass estimate drift vs the previous pass (fuzz objective:
        #: survivor-prediction error); first pass contributes nothing
        self.prediction_error_log: List[float] = []
        #: per-pass count of conflicted allocation sites (fuzz
        #: objective: context-collision pressure)
        self.conflict_rate_log: List[int] = []
        #: fragmentation evidence accumulated between inference passes:
        #: context -> [evacuated dead bytes, wholesale dead bytes]
        self._frag_evidence: Dict[int, List[int]] = {}
        #: per-site allocation counters for the sampling extension
        self._sample_counters: Dict[int, int] = {}
        #: interned site-base contexts (site_id -> site half of encode());
        #: a hit also proves the site is registered, so the fast
        #: allocation-context path skips the membership check
        self._site_bases: Dict[int, int] = {}
        #: sites flagged as conflicted in the two previous inference
        #: passes — a resolution search only starts once a conflict
        #: recurs within that window, so one-off warmup-ramp artifacts
        #: (JIT compilation mid-window skews the first curves) do not
        #: trigger call-site tracking, while genuine conflicts that
        #: flicker between passes still do
        self._conflict_history: List[set] = []
        self.allocations_sampled = 0
        self.allocations_skipped = 0
        self.survivals_recorded = 0
        self.survivals_discarded = 0

        # surface the cost constants the VM charges
        self.alloc_profile_ns = cfg.alloc_profile_ns
        self.call_fast_ns = cfg.call_fast_ns
        self.call_slow_ns = cfg.call_slow_ns

        #: construction-time snapshot of the process fast-path switch
        self.fast_paths = fast_paths_enabled()
        if self.fast_paths:
            # Rebinding as instance attributes shadows the class methods,
            # so hot hook dispatch costs one attribute load, no branch.
            self.allocation_context = self._allocation_context_fast  # type: ignore[method-assign]
            self.on_allocation = self._on_allocation_fast  # type: ignore[method-assign]
            self.on_gc_survivors = self._on_gc_survivors_fast  # type: ignore[method-assign]

        self.bind_telemetry(NULL_TELEMETRY)

    # ------------------------------------------------------------------ telemetry

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (the VM calls this at construction)."""
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_increments = metrics.counter(
            "rolp_table_increments_total", "OLD-table allocation increments"
        )
        self._m_increments_lost = metrics.counter(
            "rolp_table_increments_lost_total",
            "Increments lost to unsynchronized table updates",
        )
        self._m_survivals = metrics.counter(
            "rolp_survivals_recorded_total", "Survivor updates buffered by GC workers"
        )
        self._m_inference = metrics.counter(
            "rolp_inference_passes_total", "Lifetime inference passes"
        )
        self._m_advice_changes = metrics.counter(
            "rolp_advice_changes_total", "Pretenuring advice changes"
        )
        self._m_instrumented_methods = metrics.gauge(
            "rolp_instrumented_methods", "Methods carrying profiling code"
        )
        #: the fast paths only skip counter updates that would be null
        #: no-ops anyway, so metric totals match the reference paths
        self._metrics_on = metrics.enabled
        self.resolver.bind_telemetry(telemetry)

    # ------------------------------------------------------------------ JIT hooks

    def should_instrument(self, method: Method) -> bool:
        return self.config.package_filter.accepts(method.package)

    def on_method_compiled(self, method: Method) -> None:
        self.instrumented_methods.append(method)
        self._m_instrumented_methods.set(len(self.instrumented_methods))
        for site in method.alloc_sites.values():
            self.old_table.register_site(site.site_id)
        for call_site in method.call_sites.values():
            if call_site.instrumented:
                self.jitted_call_sites.append(call_site)

    # --------------------------------------------------------------- mutator hooks

    def allocation_context(self, thread: SimThread, site: AllocSite) -> int:
        if not site.profiled:
            return 0
        # Late-registered sites (uncommon-trap recompiles) may not have
        # passed through on_method_compiled's registration.
        if site.site_id not in self.old_table.registered_sites:
            self.old_table.register_site(site.site_id)
        return encode(site.site_id, thread.stack_state)

    def _allocation_context_fast(self, thread: SimThread, site: AllocSite) -> int:
        """== :meth:`allocation_context`; the site half of ``encode()`` is
        interned per site id, and a hit subsumes the registration check."""
        site_id = site.site_id
        if site_id == 0:
            return 0
        base = self._site_bases.get(site_id)
        if base is None:
            base = (site_id & MASK_16) << 16
            self._site_bases[site_id] = base
            self.old_table.registered_sites.add(site_id)
        return base | (thread.stack_state & MASK_16)

    def sample_allocation(self, site: AllocSite) -> bool:
        rate = self.config.allocation_sample_rate
        if rate <= 1:
            return True
        count = self._sample_counters.get(site.site_id, 0)
        self._sample_counters[site.site_id] = count + 1
        if count % rate == 0:
            self.allocations_sampled += 1
            return True
        self.allocations_skipped += 1
        return False

    def on_allocation(self, context: int, obj: SimObject) -> None:
        self._m_increments.inc()
        if not self.old_table.increment_alloc(context):
            self._m_increments_lost.inc()

    def _on_allocation_fast(self, context: int, obj: SimObject) -> None:
        """== :meth:`on_allocation` with the known-context check, the
        loss draw and the row update inlined.  The RNG is consulted under
        exactly the same conditions as ``increment_alloc``, preserving
        the draw sequence."""
        metrics_on = self._metrics_on
        if metrics_on:
            self._m_increments.inc()
        table = self.old_table
        if context == 0 or (context >> 16) & MASK_16 not in table.registered_sites:
            if metrics_on:
                self._m_increments_lost.inc()
            return
        p = table.increment_loss_probability
        if p and table._rng.random() < p:
            table.lost_increments += 1
            if metrics_on:
                self._m_increments_lost.inc()
            return
        rows = table._rows
        row = rows.get(context)
        if row is None:
            rows[context] = row = [0] * NUM_AGES
        row[0] += 1

    def call_site_enabled(self, site: CallSite) -> bool:
        return site.enabled

    # ------------------------------------------------------------------- GC hooks

    def survivor_tracking_enabled(self) -> bool:
        if not self.config.dynamic_survivor_tracking:
            return True
        return self.survivor_controller.enabled

    def on_gc_survivor(self, worker_id: int, obj: SimObject) -> None:
        """GC worker processing one survivor: validate the header and
        buffer the survival update in the worker's private table."""
        if obj.biased_locked:
            self.survivals_discarded += 1
            return
        context = obj.context
        if not self.old_table.is_known_context(context):
            self.survivals_discarded += 1
            return
        worker = self.workers[worker_id % len(self.workers)]
        worker.record_survival(context, obj.age)
        self.survivals_recorded += 1
        self._m_survivals.inc()

    def _on_gc_survivors_fast(self, objs: Sequence[SimObject], gc_threads: int) -> None:
        """== the generic :meth:`on_gc_survivors` loop over
        :meth:`on_gc_survivor`, with the header reads, validity checks
        and worker buffering inlined; one batched counter update stands
        in for the per-survivor increments (same total)."""
        workers = self.workers
        nworkers = len(workers)
        registered = self.old_table.registered_sites
        recorded = 0
        discarded = 0
        for index, obj in enumerate(objs):
            header = obj.header
            if header & BIASED_MASK:
                discarded += 1
                continue
            context = (header >> CONTEXT_SHIFT) & MASK_32
            if context == 0 or (context >> 16) & MASK_16 not in registered:
                discarded += 1
                continue
            updates = workers[(index % gc_threads) % nworkers].updates
            key = (context, (header & AGE_MASK) >> AGE_SHIFT)
            updates[key] = updates.get(key, 0) + 1
            recorded += 1
        self.survivals_recorded += recorded
        self.survivals_discarded += discarded
        if recorded and self._metrics_on:
            self._m_survivals.inc(recorded)

    def on_gc_survivors_soa(self, headers, gc_threads: int) -> None:
        """Column-sweep twin of :meth:`_on_gc_survivors_fast`.

        ``headers`` is a uint64 ndarray of the survivors' *pre-aging*
        headers, in survivor order (the SoA collect-young passes it; see
        :meth:`repro.gc.generational.GenerationalCollector._collect_young_soa`).
        The bias/context validity checks, worker assignment and (context,
        age) bucketing vectorize; the per-worker ``updates`` dicts are
        then filled from the unique buckets **in first-occurrence order**,
        so each worker's dict insertion order — which fixes the
        ``merge_worker`` iteration order — matches the per-object loop
        exactly.  Every value is converted back to a Python int before it
        enters a dict or counter.
        """
        n = len(headers)
        if n == 0:
            return
        workers = self.workers
        nworkers = len(workers)
        registered = self.old_table.registered_sites

        contexts = (headers >> _np.uint64(CONTEXT_SHIFT)) & _np.uint64(MASK_32)
        valid = (headers & _np.uint64(BIASED_MASK)) == 0
        valid &= contexts != 0
        sites = (contexts >> _np.uint64(16)) & _np.uint64(MASK_16)
        # set membership via a 64K lookup table (site ids are 16-bit)
        lut = _np.zeros(MASK_16 + 1, dtype=bool)
        if registered:
            lut[_np.fromiter(registered, dtype=_np.int64, count=len(registered))] = True
        valid &= lut[sites.astype(_np.int64)]

        recorded = int(valid.sum())
        discarded = n - recorded
        if recorded:
            index = _np.flatnonzero(valid)
            worker_ids = ((index % gc_threads) % nworkers).astype(_np.uint64)
            ages = (headers[index] & _np.uint64(AGE_MASK)) >> _np.uint64(AGE_SHIFT)
            # (worker, context, age) packed: context < 2^32 occupies bits
            # 4..35, age bits 0..3, worker bits 36+
            keys = (
                (worker_ids << _np.uint64(36))
                | (contexts[index] << _np.uint64(4))
                | ages
            )
            unique, first_index, counts = _np.unique(
                keys, return_index=True, return_counts=True
            )
            # np.unique sorts by key; reorder by first occurrence so dict
            # insertion order matches the sequential loop
            for rank in _np.argsort(first_index, kind="stable"):
                key = int(unique[rank])
                updates = workers[key >> 36].updates
                bucket = ((key >> 4) & MASK_32, key & 0xF)
                updates[bucket] = updates.get(bucket, 0) + int(counts[rank])
        self.survivals_recorded += recorded
        self.survivals_discarded += discarded
        if recorded and self._metrics_on:
            self._m_survivals.inc(recorded)

    def on_gc_end(self, gc_number: int, now_ns: int, pause_ns: float) -> None:
        merged_entries = 0
        for worker in self.workers:
            pending = len(worker)
            if pending:
                self.old_table.merge_worker(worker)
                merged_entries += pending
        if merged_entries and self._tracer.enabled:
            self._tracer.instant(
                "rolp/table-merge",
                ts_ns=now_ns,
                category="rolp",
                gc_number=gc_number,
                entries=merged_entries,
            )
        self.survivor_controller.observe_pause(pause_ns)
        if self.inference.due(gc_number):
            self._run_inference(gc_number)

    def _run_inference(self, gc_number: int) -> None:
        result = self.inference.run(
            self.old_table,
            gc_number,
            pretenured=lambda context: self.advice.generation_for(context) > 0,
        )
        if self.inference_history:
            self.prediction_error_log.append(
                estimate_drift(self.inference_history[-1], result)
            )
        self.conflict_rate_log.append(len(result.conflicted_sites))
        self.last_inference = result
        self.inference_history.append(result)
        self.advice.begin_pass()

        self._judge_fragmentation()

        # Debounce: a new conflict must recur within the last two
        # passes; active searches keep seeing the raw current state.
        seen_recently: set = set()
        for past in self._conflict_history[-2:]:
            seen_recently |= past
        persistent = (result.conflicted_sites & seen_recently) | (
            result.conflicted_sites & set(self.resolver.active)
        )
        self._conflict_history.append(set(result.conflicted_sites))

        for site_id in persistent:
            self.old_table.expand_for_conflict(site_id)
            # A conflicted site's call paths have different lifetimes:
            # its contexts must never share a site-default estimate.
            self.advice.mark_split(site_id)
        # The resolver advances BEFORE the advice updates: the pass that
        # resolves a conflict is exactly the pass whose (cleanly split)
        # curves should be trusted, so the site must leave the active
        # set before the update loop's mid-resolution guard checks it.
        self.resolver.on_inference(persistent, self.jitted_call_sites)

        changes = 0
        for context, analysis in result.analyses.items():
            if self._frag_guilty(context):
                # The collector is simultaneously reporting that this
                # context's garbage required copying out of fragmented
                # regions: any "longer survival" in the table is the
                # artifact of those same evacuations rescanning its
                # survivors, not a genuine lifetime increase.  The
                # decrement path owns this context for now.
                continue
            site_id = context_site(context)
            if site_id in self.resolver.active:
                # Mid-resolution curves swing between uni- and
                # multi-modal as tracking subsets come and go; trusting
                # them would pin a wrong estimate (update_estimate never
                # downgrades).  Wait until the search concludes.
                continue
            if analysis.is_conflict:
                if site_id in self.resolver.given_up_sites:
                    # No call-path split explains this curve: the
                    # lifetime is genuinely multi-modal.  Pretenure
                    # conservatively to the *earliest* death age so no
                    # cohort is over-tenured (over-tenuring causes
                    # fragmentation; under-tenuring only costs copies).
                    conservative = min(analysis.peaks)
                    if self.advice.update_estimate(context, conservative):
                        changes += 1
                # Otherwise: no single lifetime to trust yet; the
                # resolver works on splitting the call paths first.
                continue
            if self.advice.update_estimate(context, analysis.estimated_age):
                changes += 1
        self.decision_change_log.append(changes)

        self._m_inference.inc()
        self._m_advice_changes.inc(changes)
        if self._tracer.enabled:
            self._tracer.instant(
                "rolp/inference",
                category="rolp",
                gc_number=gc_number,
                advice_changes=changes,
                conflicted_sites=len(result.conflicted_sites),
                active_searches=len(self.resolver.active),
            )

        if self.config.dynamic_survivor_tracking:
            tracking_before = self.survivor_controller.enabled
            self.survivor_controller.on_inference(
                decisions_changed=changes > 0,
                have_decisions=len(self.advice) > 0,
            )
            if tracking_before != self.survivor_controller.enabled and self._tracer.enabled:
                self._tracer.instant(
                    "rolp/survivor-tracking",
                    category="rolp",
                    enabled=self.survivor_controller.enabled,
                )

    def on_fragmentation_report(self, blame: Dict[int, tuple]) -> None:
        """Collector reports ``context -> (evacuated dead bytes,
        wholesale-reclaimed dead bytes)`` for the dynamic generations.

        Evidence is *accumulated* between inference passes rather than
        judged per GC: a cohort that dies together produces its
        wholesale credit on one GC and its boundary-region blame on the
        following ones, so any per-GC ratio would be skewed.  The
        verdict happens in :meth:`_judge_fragmentation` once per pass.
        """
        for context, (evacuated, wholesale) in blame.items():
            entry = self._frag_evidence.setdefault(context, [0, 0])
            entry[0] += evacuated
            entry[1] += wholesale

    def _frag_guilty(self, context: int) -> bool:
        """Whether pending fragmentation evidence marks this context as
        copy-dominant mis-tenured (blocks lifetime-increase updates)."""
        entry = self._frag_evidence.get(context)
        if not entry:
            return False
        evacuated, wholesale = entry
        if evacuated < self.config.fragmentation_blame_bytes:
            return False
        total = evacuated + wholesale
        return bool(total) and evacuated / total >= 0.5

    def _judge_fragmentation(self) -> None:
        """Decrement contexts whose garbage predominantly required
        *copying* (evacuated out of mixed-liveness regions).  Contexts
        whose objects die together get their regions back for free and
        must not be poisoned by the boundary region a cohort straddles
        (paper Section 6)."""
        for context, (evacuated, wholesale) in self._frag_evidence.items():
            if evacuated < self.config.fragmentation_blame_bytes:
                continue
            total = evacuated + wholesale
            if total and evacuated / total >= 0.5:
                self.advice.decrement(context)
        self._frag_evidence.clear()

    # --------------------------------------------------------------------- advice

    def allocation_advice(self, context: int) -> int:
        return self.advice.generation_for(context)

    # ----------------------------------------------------------------- statistics

    def conflicts_found(self) -> int:
        return self.resolver.conflicts_seen

    def prediction_error(self) -> float:
        """Mean per-pass estimate drift (0.0 before the second pass).

        Deliberately NOT part of :meth:`summary` — rendered artifacts
        and their goldens must not change shape; the fuzz oracle reads
        this directly."""
        log = self.prediction_error_log
        return sum(log) / len(log) if log else 0.0

    def conflict_rate(self) -> float:
        """Mean conflicted-site count per inference pass (0.0 before
        the first pass); the fuzzer's context-collision objective."""
        log = self.conflict_rate_log
        return sum(log) / len(log) if log else 0.0

    def old_table_memory_bytes(self) -> int:
        return self.old_table.memory_bytes()

    def summary(self) -> Dict[str, float]:
        return {
            "instrumented_methods": len(self.instrumented_methods),
            "jitted_call_sites": len(self.jitted_call_sites),
            "advice_entries": len(self.advice),
            "conflicts": self.conflicts_found(),
            "old_table_mb": self.old_table_memory_bytes() / (1 << 20),
            "survivals_recorded": self.survivals_recorded,
            "survivals_discarded": self.survivals_discarded,
            "inference_passes": self.inference.passes_run,
            "survivor_tracking_on": float(self.survivor_tracking_enabled()),
        }

"""Lifetime-estimation advice consumed by the pretenuring collector.

Inference produces an estimated age (the GC-cycle count at which most of
a context's objects die); this table maps allocation contexts to the
NG2C generation new objects should be allocated into (paper Section 7.1:
estimated age 0 → young, 1..14 → dynamic generation of the same number,
15 → old).

Update rules follow Section 6:

* **Lifetime increase**: the OLD table shows survivors reaching higher
  ages → inference raises the estimate → the advice rises immediately.
* **Lifetime decrease**: pretenured objects no longer flow through young
  collections, so the table goes quiet for them; the only signal is
  heap fragmentation.  The collector reports which contexts own the
  dead bytes in fragmented regions, and the advice for those contexts
  is decremented.
* A context with an established non-zero estimate is *not* reset just
  because a fresh (post-clear) table snapshot only shows age-0 entries —
  absence of survival data is expected once pretenuring succeeds.

The table also keeps a per-site default so that, after conflict
resolution changes the thread-stack-state mix (new context values for
the same site), allocations do not lose their advice while the new
contexts accumulate samples.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.heap.header import MAX_AGE
from repro.core.context import context_site


class AdviceTable:
    """Context → estimated generation, with per-site defaults.

    Parameters
    ----------
    pretenure_min_age:
        Minimum estimated age worth pretenuring; estimates below it
        yield generation 0 (plain young allocation).  Copying an object
        once or twice is cheaper than risking mis-tenuring it.
    """

    def __init__(self, pretenure_min_age: int = 2, cooldown_passes: int = 2) -> None:
        if not 0 < pretenure_min_age <= MAX_AGE:
            raise ValueError("pretenure_min_age must be in 1..%d" % MAX_AGE)
        if cooldown_passes < 0:
            raise ValueError("cooldown_passes must be >= 0")
        self.pretenure_min_age = pretenure_min_age
        #: hysteresis: after any change, a context's estimate is frozen
        #: for this many inference passes.  Evacuating a region whose
        #: objects die gradually (an LRU cache, say) produces *both* a
        #: raise signal (evacuated survivors age) and a decrement signal
        #: (evacuated dead bytes) from the same pause — without a
        #: cooldown the estimate oscillates between generations, strewing
        #: partially-filled region tails across all of them.
        self.cooldown_passes = cooldown_passes
        self._by_context: Dict[int, int] = {}
        self._site_default: Dict[int, int] = {}
        #: pass number until which each context's estimate is frozen
        self._frozen_until: Dict[int, int] = {}
        self._current_pass = 0
        #: sites whose contexts disagree (conflict unresolved): no site
        #: default is served for them
        self._split_sites: Dict[int, bool] = {}
        self.updates = 0
        self.decrements = 0

    # -- queries ---------------------------------------------------------------

    def generation_for(self, context: int) -> int:
        """The generation a new allocation with ``context`` should use."""
        gen = self._by_context.get(context)
        if gen is not None:
            return gen
        site_id = context_site(context)
        if self._split_sites.get(site_id):
            # The site's call paths have different lifetimes; a context
            # we have no estimate for must stay in the young gen rather
            # than inherit another path's estimate.
            return 0
        return self._site_default.get(site_id, 0)

    def estimate_for(self, context: int) -> Optional[int]:
        """Raw per-context estimate (None when never estimated)."""
        return self._by_context.get(context)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._by_context.items())

    def __len__(self) -> int:
        return len(self._by_context)

    # -- inference updates ----------------------------------------------------------

    def begin_pass(self) -> None:
        """Advance the hysteresis clock (call once per inference pass)."""
        self._current_pass += 1

    def _frozen(self, context: int) -> bool:
        return self._frozen_until.get(context, 0) > self._current_pass

    def _freeze(self, context: int) -> None:
        self._frozen_until[context] = self._current_pass + self.cooldown_passes

    def update_estimate(self, context: int, estimated_age: int) -> bool:
        """Apply one inference result.  Returns True when the effective
        decision for the context changed."""
        new_gen = self._age_to_generation(estimated_age)
        current = self._by_context.get(context)
        if current is None:
            if new_gen == 0:
                # Nothing to record: young is already the default.
                return False
            self._by_context[context] = new_gen
            self._freeze(context)
            self._refresh_site_default(context_site(context))
            self.updates += 1
            return True
        if new_gen > current and not self._frozen(context):
            # Lifetime increase: the table evidenced longer survival.
            self._by_context[context] = new_gen
            self._freeze(context)
            self._refresh_site_default(context_site(context))
            self.updates += 1
            return True
        # Equal, lower, or in cooldown: keep the standing decision
        # (decreases arrive through the fragmentation path, not through
        # quiet tables).
        return False

    def _age_to_generation(self, estimated_age: int) -> int:
        if estimated_age < self.pretenure_min_age:
            return 0
        # A saturated age (15) is ambiguous: the 4 age bits cannot
        # distinguish "dies at age 20" from "lives forever".  Such
        # contexts go to the deepest *dynamic* generation rather than
        # the shared old generation, so a continuously-dying population
        # (an LRU cache, say) fragments only among its own kind.
        return min(estimated_age, MAX_AGE - 1)

    # -- fragmentation feedback --------------------------------------------------------

    def decrement(self, context: int) -> bool:
        """Lower a context's estimate after it caused fragmentation."""
        current = self._by_context.get(context)
        if not current or self._frozen(context):
            return False
        self._by_context[context] = current - 1
        self._freeze(context)
        self._refresh_site_default(context_site(context))
        self.decrements += 1
        return True

    # -- site defaults ---------------------------------------------------------------------

    def _refresh_site_default(self, site_id: int) -> None:
        if self._split_sites.get(site_id):
            # Once split (conflict detected), always split.
            return
        gens = {
            gen
            for context, gen in self._by_context.items()
            if context_site(context) == site_id
        }
        if len(gens) == 1:
            self._site_default[site_id] = next(iter(gens))
        else:
            # Contexts disagree: serving a site default would mis-tenure
            # one of the call paths, so serve none.
            self._site_default.pop(site_id, None)
            self._split_sites[site_id] = True

    def mark_split(self, site_id: int) -> None:
        """Mark a site as reached through call paths with different
        lifetimes (a conflict was detected for it): its contexts must be
        advised individually, never through a site default."""
        self._split_sites[site_id] = True
        self._site_default.pop(site_id, None)

    def site_is_split(self, site_id: int) -> bool:
        return self._split_sites.get(site_id, False)

"""Package-based profiling filters (paper Section 7.3).

Profiling every hot method of a large platform is too expensive; ROLP
lets the user name the packages that manage application *data* (e.g.
``cassandra.db``) and restricts instrumentation to them.  A filter with
no include prefixes accepts everything (minus explicit excludes).

Matching follows Java package semantics: a prefix matches the package
itself and every sub-package (``cassandra.db`` matches
``cassandra.db.compaction`` but not ``cassandra.dbx``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _package_matches(package: str, prefix: str) -> bool:
    if not prefix:
        return True
    return package == prefix or package.startswith(prefix + ".")


class PackageFilter:
    """Include/exclude package filter applied at JIT instrumentation.

    Parameters
    ----------
    include:
        Package prefixes to profile; empty/None = profile everything.
    exclude:
        Package prefixes to never profile (take precedence over
        includes).
    """

    def __init__(
        self,
        include: Optional[Sequence[str]] = None,
        exclude: Optional[Sequence[str]] = None,
    ) -> None:
        self.include: List[str] = sorted(set(include or ()))
        self.exclude: List[str] = sorted(set(exclude or ()))

    @classmethod
    def accept_all(cls) -> "PackageFilter":
        return cls()

    def accepts(self, package: str) -> bool:
        """Whether methods of ``package`` get profiling code installed."""
        for prefix in self.exclude:
            if _package_matches(package, prefix):
                return False
        if not self.include:
            return True
        return any(_package_matches(package, prefix) for prefix in self.include)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PackageFilter(include=%r, exclude=%r)" % (self.include, self.exclude)

"""Allocation-context conflict resolution (paper Section 5).

When inference sees a multi-triangle curve, the same allocation site is
being reached through call paths with different object lifetimes.  The
fix is to enable thread-stack-state tracking on enough call sites to
split those paths into distinct contexts — but tracking every call is
too expensive, so ROLP searches for a small sufficient set iteratively:

1. at startup no call site is tracked;
2. on a conflict, a random subset of P% of the jitted call sites starts
   tracking;
3. at the next inference pass: if the conflict disappeared, the minimal
   set S is inside the enabled subset — start *narrowing* (turning
   tracked calls back off while the conflict stays resolved); if the
   conflict persists, try a fresh random subset (never repeating call
   sites) until the sites are exhausted or the conflict resolves.

The algorithm converges in time linear in (jitted call sites / P) times
the 16-GC-cycle inference period — the predictability property Figure 7
quantifies via :func:`worst_case_resolution_ns`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.runtime.method import CallSite
from repro.telemetry import NULL_TELEMETRY


def worst_case_resolution_ns(
    num_call_sites: int,
    p_fraction: float,
    inference_period_gcs: int,
    avg_gc_interval_ns: float,
) -> float:
    """Worst-case time to resolve one conflict (Figure 7's model).

    The search tries disjoint random subsets of ``p_fraction`` of the
    call sites, one per inference pass; exhausting all sites takes
    ``ceil(1 / p_fraction)`` passes of ``inference_period_gcs`` GC
    cycles each.
    """
    if num_call_sites <= 0:
        return 0.0
    if not 0.0 < p_fraction <= 1.0:
        raise ValueError("P must be a fraction in (0, 1]")
    subset = max(1, int(num_call_sites * p_fraction))
    rounds = -(-num_call_sites // subset)  # ceil division
    return rounds * inference_period_gcs * avg_gc_interval_ns


class _Resolution:
    """Search state for one conflicted allocation site."""

    __slots__ = (
        "site_id",
        "tried",
        "enabled",
        "narrowing",
        "confirmed",
        "pool",
        "trial_disabled",
        "rounds",
        "done",
    )

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id
        #: call sites already tried in failed subsets
        self.tried: Set[CallSite] = set()
        #: currently enabled (for this resolution) call sites
        self.enabled: List[CallSite] = []
        #: narrowing phase: conflict resolved, minimizing the set
        self.narrowing = False
        #: narrowing: sites proven necessary (disabling them revived the
        #: conflict) — they stay enabled
        self.confirmed: List[CallSite] = []
        #: narrowing: sites not yet proven either way
        self.pool: List[CallSite] = []
        #: narrowing: the half switched off in the current trial
        self.trial_disabled: List[CallSite] = []
        self.rounds = 0
        self.done = False

    def keep_enabled(self) -> List[CallSite]:
        """The final tracking set once the search is done."""
        return self.confirmed + self.pool if self.narrowing else list(self.enabled)


class ConflictResolver:
    """Iterative minimal-tracking-set search across all conflicts.

    Parameters
    ----------
    p_fraction:
        Fraction of jitted call sites enabled per attempt (the paper
        recommends at most 20%).
    min_set_size:
        Narrowing stops when the enabled set is this small.
    """

    def __init__(
        self,
        p_fraction: float = 0.20,
        min_set_size: int = 2,
        seed: int = 0x5E7,
    ) -> None:
        if not 0.0 < p_fraction <= 1.0:
            raise ValueError("P must be a fraction in (0, 1]")
        self.p_fraction = p_fraction
        self.min_set_size = min_set_size
        self._rng = random.Random(seed)
        #: reference counts: how many active searches currently hold a
        #: call site enabled.  Searches run in parallel (one per
        #: conflicted allocation site) and may sample overlapping
        #: subsets; without refcounting, one search's failed-subset
        #: cleanup would switch off a site another search still needs.
        self._holds: Dict[CallSite, int] = {}
        #: sites kept permanently enabled by finished searches (the
        #: minimal sets S): never disabled again.
        self.pinned: Set[CallSite] = set()
        #: active searches, keyed by allocation-site id
        self.active: Dict[int, _Resolution] = {}
        #: site ids whose conflicts were resolved (minimal set found)
        self.resolved_sites: Set[int] = set()
        #: site ids whose conflict no call-path split can explain (every
        #: subset was tried without effect): the lifetime really is
        #: multi-modal at one call path.  The profiler falls back to a
        #: conservative per-curve estimate for these.
        self.given_up_sites: Set[int] = set()
        self.conflicts_seen = 0
        self.subsets_tried = 0
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (the profiler wires this through)."""
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_started = metrics.counter(
            "rolp_conflicts_total", "Conflict-resolution searches started"
        )
        self._m_resolved = metrics.counter(
            "rolp_conflicts_resolved_total", "Searches that found a tracking set"
        )
        self._m_given_up = metrics.counter(
            "rolp_conflicts_given_up_total",
            "Searches exhausted without splitting the curve",
        )
        self._m_subsets = metrics.counter(
            "rolp_conflict_subsets_tried_total", "Random P-subsets enabled"
        )

    # -- effective P under parallel conflicts ------------------------------------

    def effective_p(self) -> float:
        """P is divided across concurrent resolutions so the aggregate
        tracking overhead stays bounded (paper: 'P should be adjusted
        (reduced) as the number of parallel conflicts may increase')."""
        concurrent = max(1, len(self.active))
        return self.p_fraction / concurrent

    # -- the per-inference-pass step -----------------------------------------------

    def on_inference(
        self,
        conflicted_sites: Set[int],
        jitted_call_sites: Sequence[CallSite],
    ) -> None:
        """Advance every search given this pass's conflict observations."""
        # 1. New conflicts start a search.
        for site_id in conflicted_sites:
            if site_id not in self.active and site_id not in self.resolved_sites:
                self.conflicts_seen += 1
                self.active[site_id] = _Resolution(site_id)
                self._m_started.inc()
                if self._tracer.enabled:
                    self._tracer.instant(
                        "rolp/conflict-start", category="rolp", site_id=site_id
                    )

        # 2. Advance active searches.
        finished: List[int] = []
        for site_id, search in self.active.items():
            still_conflicted = site_id in conflicted_sites
            self._advance(search, still_conflicted, jitted_call_sites)
            if search.done:
                finished.append(site_id)
        for site_id in finished:
            search = self.active[site_id]
            given_up = site_id in self.given_up_sites
            (self._m_given_up if given_up else self._m_resolved).inc()
            if self._tracer.enabled:
                self._tracer.instant(
                    "rolp/conflict-resolved",
                    category="rolp",
                    site_id=site_id,
                    rounds=search.rounds,
                    tracked_sites=len(search.keep_enabled()),
                    given_up=given_up,
                )
            self.resolved_sites.add(site_id)
            del self.active[site_id]

    def _advance(
        self,
        search: _Resolution,
        still_conflicted: bool,
        jitted_call_sites: Sequence[CallSite],
    ) -> None:
        search.rounds += 1
        if search.narrowing:
            self._narrow(search, still_conflicted)
            return
        if search.enabled and not still_conflicted:
            # The enabled subset contains S: start narrowing.
            search.narrowing = True
            search.confirmed = []
            search.pool = list(search.enabled)
            search.trial_disabled = []
            self._narrow(search, still_conflicted=False)
            return
        # Either first round or the previous subset failed: pick fresh.
        self._disable(search.enabled)
        search.tried.update(search.enabled)
        search.enabled = []
        candidates = [
            s for s in jitted_call_sites if s not in search.tried and not s.inlined
        ]
        if not candidates:
            # Exhausted: no call-site subset splits this curve — the
            # context is genuinely multi-modal.  Give up; the advice
            # layer falls back to a conservative estimate.
            search.done = True
            self.given_up_sites.add(search.site_id)
            return
        subset_size = max(1, int(len(jitted_call_sites) * self.effective_p()))
        subset_size = min(subset_size, len(candidates))
        search.enabled = self._rng.sample(candidates, subset_size)
        self._enable(search.enabled)
        self.subsets_tried += 1
        self._m_subsets.inc()

    def _narrow(self, search: _Resolution, still_conflicted: bool) -> None:
        """Turn tracked calls back off while the conflict stays gone.

        Sites live in three buckets: ``confirmed`` (disabling them
        revived the conflict — they must stay on), ``pool`` (still
        undetermined, currently on), ``trial_disabled`` (the half
        switched off for the current trial).
        """
        if still_conflicted:
            # The trial half contained part of S: bring it back and pin
            # it (conservative — we pin the whole half rather than
            # bisecting it further, trading minimality for convergence).
            self._enable(search.trial_disabled)
            search.confirmed.extend(search.trial_disabled)
            search.trial_disabled = []
        else:
            # The trial half was unnecessary; it stays off for good.
            search.trial_disabled = []

        total_on = len(search.confirmed) + len(search.pool)
        if not search.pool or total_on <= self.min_set_size:
            search.done = True
            search.enabled = search.confirmed + search.pool
            self._pin(search.enabled)
            return

        half = max(1, len(search.pool) // 2)
        search.trial_disabled = search.pool[half:]
        search.pool = search.pool[:half]
        self._disable(search.trial_disabled)
        if not search.trial_disabled:
            search.done = True
            search.enabled = search.confirmed + search.pool
            self._pin(search.enabled)

    # -- switch plumbing -----------------------------------------------------------------

    def _enable(self, sites: Sequence[CallSite]) -> None:
        for site in sites:
            self._holds[site] = self._holds.get(site, 0) + 1
            site.enabled = True

    def _disable(self, sites: Sequence[CallSite]) -> None:
        for site in sites:
            count = self._holds.get(site, 0) - 1
            if count > 0:
                self._holds[site] = count
            else:
                self._holds.pop(site, None)
            site.enabled = site in self.pinned or self._holds.get(site, 0) > 0

    def _pin(self, sites: Sequence[CallSite]) -> None:
        """Keep a finished search's minimal set enabled forever."""
        for site in sites:
            self.pinned.add(site)
            site.enabled = True

    # -- statistics ------------------------------------------------------------------------

    def enabled_site_count(self) -> int:
        total = 0
        for search in self.active.values():
            if search.narrowing:
                total += len(search.confirmed) + len(search.pool)
            else:
                total += len(search.enabled)
        return total

"""Dynamic survivor-tracking shutdown (paper Section 7.4).

Once pretenuring is in effect, the dominant remaining GC-pause component
is ROLP's own survivor-processing code (header read + OLD-table update
per surviving object).  When profiling decisions have stabilized —
i.e. the last inference pass changed nothing — ROLP turns the survivor
tracking code off, shaving that cost from every pause.  It turns the
code back on if the average pause time regresses by more than a
configurable fraction (10% by default) over the last value recorded
while tracking was active, which signals that the workload shifted and
fresh lifetime data is needed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class SurvivorTrackingController:
    """On/off controller for the survivor-processing profiling code."""

    def __init__(
        self,
        regression_threshold: float = 0.10,
        window: int = 8,
        stable_passes_required: int = 3,
    ) -> None:
        if regression_threshold <= 0:
            raise ValueError("regression threshold must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if stable_passes_required <= 0:
            raise ValueError("stable_passes_required must be positive")
        self.regression_threshold = regression_threshold
        self.window = window
        #: consecutive no-change inference passes before shutting down —
        #: one lucky stable pass right after the first decision landed
        #: does not mean the profile has converged
        self.stable_passes_required = stable_passes_required
        self.enabled = True
        #: average pause recorded the last time tracking was active
        self.baseline_pause_ns: Optional[float] = None
        # deque(maxlen=...) evicts the oldest pause in O(1) instead of
        # list.pop(0)'s O(window) shuffle; _average sums in the same
        # oldest-to-newest order, so the float result is bit-identical.
        self._recent: Deque[float] = deque(maxlen=window)
        self._stable_streak = 0
        self.shutdowns = 0
        self.reactivations = 0

    # -- pause observation -------------------------------------------------------

    def observe_pause(self, pause_ns: float) -> None:
        """Record a completed GC pause (called every cycle)."""
        self._recent.append(pause_ns)
        if not self.enabled and self._regressed():
            self.enabled = True
            self.reactivations += 1

    def _average(self) -> Optional[float]:
        if not self._recent:
            return None
        return sum(self._recent) / len(self._recent)

    def _regressed(self) -> bool:
        average = self._average()
        if average is None or self.baseline_pause_ns is None:
            return False
        return average > self.baseline_pause_ns * (1.0 + self.regression_threshold)

    # -- inference feedback ---------------------------------------------------------

    def on_inference(self, decisions_changed: bool, have_decisions: bool = True) -> None:
        """Called after each inference pass.

        A stable pass (no decision changed) while tracking is on means
        the profile has converged: record the baseline and switch the
        survivor code off.  An unstable pass keeps (or puts) it on.

        ``have_decisions`` guards against declaring convergence before
        anything was learned: a pass that changed nothing because the
        advice table is still *empty* is warmup, not stability —
        shutting tracking down then would starve inference of survival
        data forever.
        """
        if decisions_changed:
            self._stable_streak = 0
            if not self.enabled:
                self.enabled = True
                self.reactivations += 1
            return
        if not have_decisions:
            return
        self._stable_streak += 1
        if self.enabled and self._stable_streak >= self.stable_passes_required:
            self.baseline_pause_ns = self._average()
            self.enabled = False
            self.shutdowns += 1
